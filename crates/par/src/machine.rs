//! A from-scratch message-passing machine: the Cray T3D substitute.
//!
//! `Machine::run(P, f)` spawns `P` ranks as OS threads; each receives a
//! [`Comm`] endpoint with point-to-point tagged send/recv, a barrier, and
//! the collectives the paper's solver needs (allreduce for the global CFL
//! step, gather/broadcast for replicated adapt decisions).
//!
//! Message payloads are `Vec<f64>` — block field regions are what actually
//! moves, and control integers fit losslessly in doubles below 2^53.
//! Channels are unbounded (crossbeam), so sends never block and the
//! communication patterns in `dist` are deadlock-free by construction
//! (all sends precede all receives within a phase).
//!
//! Every endpoint counts messages and payload volume so tests and the BSP
//! cost model can be validated against what a run *actually* sent.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A tagged message.
#[derive(Debug)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// User tag (tags with the top bit set are reserved for collectives).
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

const COLL_TAG: u64 = 1 << 63;

/// Per-rank communication endpoint.
pub struct Comm {
    rank: usize,
    nranks: usize,
    inbox: Receiver<Msg>,
    peers: Vec<Sender<Msg>>,
    barrier: Arc<Barrier>,
    /// Out-of-order messages waiting for a matching recv.
    stash: RefCell<VecDeque<Msg>>,
    /// Point-to-point messages sent.
    pub sent_msgs: Cell<u64>,
    /// Total f64s sent point-to-point.
    pub sent_values: Cell<u64>,
}

impl Comm {
    /// This endpoint's rank in `0..nranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Send `data` to `to` with a user `tag` (top bit reserved).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        debug_assert_eq!(tag & COLL_TAG, 0, "top tag bit is reserved");
        self.send_raw(to, tag, data);
    }

    fn send_raw(&self, to: usize, tag: u64, data: Vec<f64>) {
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_values.set(self.sent_values.get() + data.len() as u64);
        self.peers[to]
            .send(Msg { src: self.rank, tag, data })
            .expect("peer hung up");
    }

    /// Blocking receive matching `(from, tag)`; out-of-order arrivals are
    /// stashed and delivered to later matching receives.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        debug_assert_eq!(tag & COLL_TAG, 0, "top tag bit is reserved");
        self.recv_raw(from, tag)
    }

    fn recv_raw(&self, from: usize, tag: u64) -> Vec<f64> {
        // check the stash first
        {
            let mut stash = self.stash.borrow_mut();
            if let Some(pos) = stash.iter().position(|m| m.src == from && m.tag == tag) {
                return stash.remove(pos).expect("position valid").data;
            }
        }
        loop {
            let msg = self.inbox.recv().expect("machine shut down mid-recv");
            if msg.src == from && msg.tag == tag {
                return msg.data;
            }
            self.stash.borrow_mut().push_back(msg);
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-reduce a vector elementwise with `op`; every rank gets the
    /// result. Gather-to-root + broadcast (tree depth is modeled, not
    /// implemented — correctness here, cost in `costmodel`).
    pub fn allreduce_vec(&self, mut data: Vec<f64>, op: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        if self.nranks == 1 {
            return data;
        }
        if self.rank == 0 {
            for src in 1..self.nranks {
                let theirs = self.recv_raw(src, COLL_TAG);
                assert_eq!(theirs.len(), data.len(), "allreduce length mismatch");
                for (a, b) in data.iter_mut().zip(theirs) {
                    *a = op(*a, b);
                }
            }
            for dst in 1..self.nranks {
                self.send_raw(dst, COLL_TAG | 1, data.clone());
            }
            data
        } else {
            self.send_raw(0, COLL_TAG, data);
            self.recv_raw(0, COLL_TAG | 1)
        }
    }

    /// All-reduce a scalar.
    pub fn allreduce(&self, x: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        self.allreduce_vec(vec![x], op)[0]
    }

    /// Global minimum (the CFL reduction).
    pub fn allreduce_min(&self, x: f64) -> f64 {
        self.allreduce(x, f64::min)
    }

    /// Global maximum.
    pub fn allreduce_max(&self, x: f64) -> f64 {
        self.allreduce(x, f64::max)
    }

    /// Global sum.
    pub fn allreduce_sum(&self, x: f64) -> f64 {
        self.allreduce(x, |a, b| a + b)
    }

    /// Gather variable-length vectors to every rank (allgatherv):
    /// result[r] is rank r's contribution.
    pub fn allgatherv(&self, data: Vec<f64>) -> Vec<Vec<f64>> {
        if self.nranks == 1 {
            return vec![data];
        }
        if self.rank == 0 {
            let mut all = vec![Vec::new(); self.nranks];
            all[0] = data;
            for src in 1..self.nranks {
                all[src] = self.recv_raw(src, COLL_TAG | 2);
            }
            // broadcast as a flattened stream with a length header
            let mut flat = Vec::new();
            flat.push(self.nranks as f64);
            for part in &all {
                flat.push(part.len() as f64);
            }
            for part in &all {
                flat.extend_from_slice(part);
            }
            for dst in 1..self.nranks {
                self.send_raw(dst, COLL_TAG | 3, flat.clone());
            }
            all
        } else {
            self.send_raw(0, COLL_TAG | 2, data);
            let flat = self.recv_raw(0, COLL_TAG | 3);
            let n = flat[0] as usize;
            let lens: Vec<usize> = (0..n).map(|i| flat[1 + i] as usize).collect();
            let mut out = Vec::with_capacity(n);
            let mut off = 1 + n;
            for len in lens {
                out.push(flat[off..off + len].to_vec());
                off += len;
            }
            out
        }
    }

    /// Broadcast from `root` to all; returns the payload everywhere.
    pub fn broadcast(&self, root: usize, data: Vec<f64>) -> Vec<f64> {
        if self.nranks == 1 {
            return data;
        }
        if self.rank == root {
            for dst in 0..self.nranks {
                if dst != root {
                    self.send_raw(dst, COLL_TAG | 4, data.clone());
                }
            }
            data
        } else {
            self.recv_raw(root, COLL_TAG | 4)
        }
    }
}

/// The machine: spawns ranks and collects their results.
pub struct Machine;

impl Machine {
    /// Run `f` on `nranks` ranks (threads); returns per-rank results in
    /// rank order. Panics in any rank propagate.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        assert!(nranks >= 1);
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let barrier = Arc::new(Barrier::new(nranks));
        let f = &f;
        let mut comms: Vec<Comm> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Comm {
                rank,
                nranks,
                inbox,
                peers: senders.clone(),
                barrier: barrier.clone(),
                stash: RefCell::new(VecDeque::new()),
                sent_msgs: Cell::new(0),
                sent_values: Cell::new(0),
            })
            .collect();
        drop(senders);
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .drain(..)
                .map(|comm| scope.spawn(move || f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_trivial() {
        let out = Machine::run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.nranks(), 1);
            c.allreduce_sum(5.0)
        });
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = Machine::run(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, 7, vec![c.rank() as f64]);
            let got = c.recv(prev, 7);
            got[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = Machine::run(2, |c| {
            if c.rank() == 0 {
                // send two tags; peer receives in opposite order
                c.send(1, 1, vec![10.0]);
                c.send(1, 2, vec![20.0]);
                0.0
            } else {
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                a[0] + b[0]
            }
        });
        assert_eq!(out[1], 30.0);
    }

    #[test]
    fn allreduce_ops() {
        let out = Machine::run(5, |c| {
            let r = c.rank() as f64;
            (
                c.allreduce_sum(r),
                c.allreduce_min(r),
                c.allreduce_max(r),
            )
        });
        for (s, lo, hi) in out {
            assert_eq!(s, 10.0);
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 4.0);
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Machine::run(3, |c| {
            let r = c.rank() as f64;
            c.allreduce_vec(vec![r, 10.0 * r], |a, b| a + b)
        });
        for v in out {
            assert_eq!(v, vec![3.0, 30.0]);
        }
    }

    #[test]
    fn allgatherv_variable_lengths() {
        let out = Machine::run(3, |c| {
            let mine: Vec<f64> = (0..=c.rank()).map(|i| i as f64).collect();
            c.allgatherv(mine)
        });
        for parts in out {
            assert_eq!(parts[0], vec![0.0]);
            assert_eq!(parts[1], vec![0.0, 1.0]);
            assert_eq!(parts[2], vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = Machine::run(4, |c| {
            let data = if c.rank() == 2 { vec![42.0, 43.0] } else { Vec::new() };
            c.broadcast(2, data)
        });
        for v in out {
            assert_eq!(v, vec![42.0, 43.0]);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Machine::run(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // after the barrier every rank must see all increments
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn counters_track_traffic() {
        let out = Machine::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1.0, 2.0, 3.0]);
            } else {
                c.recv(0, 0);
            }
            c.barrier();
            (c.sent_msgs.get(), c.sent_values.get())
        });
        assert_eq!(out[0], (1, 3));
        assert_eq!(out[1], (0, 0));
    }

    #[test]
    fn many_ranks_stress() {
        // 32 ranks exchanging with all peers
        let out = Machine::run(32, |c| {
            for to in 0..c.nranks() {
                if to != c.rank() {
                    c.send(to, 9, vec![c.rank() as f64]);
                }
            }
            let mut sum = 0.0;
            for from in 0..c.nranks() {
                if from != c.rank() {
                    sum += c.recv(from, 9)[0];
                }
            }
            sum
        });
        let want: f64 = (0..32).sum::<i64>() as f64;
        for (r, s) in out.iter().enumerate() {
            assert_eq!(*s, want - r as f64);
        }
    }
}

//! A from-scratch message-passing machine: the Cray T3D substitute.
//!
//! `Machine::run(P, f)` spawns `P` ranks as OS threads; each receives a
//! [`Comm`] endpoint with point-to-point tagged send/recv, a barrier, and
//! the collectives the paper's solver needs (allreduce for the global CFL
//! step, gather/broadcast for replicated adapt decisions).
//!
//! Message payloads are `Vec<f64>` — block field regions are what actually
//! moves, and control integers fit losslessly in doubles below 2^53.
//! Channels are unbounded (`std::sync::mpsc`), so plain sends never block
//! and the communication patterns in `dist` are deadlock-free by
//! construction (all sends precede all receives within a phase).
//!
//! Unlike the paper's T3D, this machine does **not** assume a reliable
//! interconnect or immortal ranks:
//!
//! * every rank body runs under `catch_unwind`, so [`Machine::run`]
//!   returns `Result<Vec<T>, MachineError>` naming the failed rank
//!   instead of propagating a panic (or worse, hanging the join);
//! * blocking receives and barriers carry a **watchdog**: a silent
//!   deadlock becomes a [`RankFailure::Stuck`] report naming the stuck
//!   `(from, tag)` pair;
//! * [`Comm::recv_timeout`] / [`Comm::try_recv`] expose fallible receives
//!   returning a typed [`CommError`];
//! * with a [`FaultPlan`] attached (or `reliable: Some(true)`), user
//!   point-to-point traffic is upgraded to a sequence-numbered,
//!   checksummed, ack/retry **reliable transport** that delivers
//!   exactly-once, in-order even when messages are dropped, duplicated,
//!   corrupted, or delayed. Collectives use reserved tags and are never
//!   fault-injected.
//!
//! Every endpoint counts messages and payload volume so tests and the BSP
//! cost model can be validated against what a run *actually* sent.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};

use ablock_obs::Metrics;

use crate::fault::{fnv1a64, FaultAction, FaultPlan};

/// A tagged message.
#[derive(Debug)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// User tag (tags with the top two bits set are reserved).
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Reserved tag bit for collectives.
const COLL_TAG: u64 = 1 << 63;
/// Reserved tag for reliable-transport acknowledgements.
const ACK_TAG: u64 = 1 << 62;

/// Tuning knobs for timeouts and the reliable transport.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// How long a blocking `recv`/`barrier` may wait before the rank is
    /// declared stuck (deadlock detection).
    pub watchdog: Duration,
    /// Granularity of abort-flag polling while blocked.
    pub poll: Duration,
    /// How long a reliable send waits for an ack before retransmitting.
    pub retry_timeout: Duration,
    /// Retransmissions before a reliable send declares the peer dead.
    pub max_retries: u32,
    /// Force the reliable transport on/off; `None` enables it exactly
    /// when a fault plan is attached.
    pub reliable: Option<bool>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            watchdog: Duration::from_secs(30),
            poll: Duration::from_millis(2),
            retry_timeout: Duration::from_millis(25),
            max_retries: 400,
            reliable: None,
        }
    }
}

impl MachineConfig {
    /// A configuration with tight timeouts for tests: failures are
    /// detected in hundreds of milliseconds rather than tens of seconds.
    pub fn fast() -> Self {
        MachineConfig {
            watchdog: Duration::from_millis(500),
            poll: Duration::from_millis(1),
            retry_timeout: Duration::from_millis(10),
            max_retries: 100,
            reliable: None,
        }
    }
}

/// Error from a fallible receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the deadline.
    Timeout {
        /// Rank the receive was matching on.
        from: usize,
        /// Tag the receive was matching on.
        tag: u64,
        /// How long the receive waited.
        waited: Duration,
    },
    /// The machine is shutting down because another rank failed.
    Aborted,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { from, tag, waited } => {
                write!(f, "no message (from={from}, tag={tag}) within {waited:?}")
            }
            CommError::Aborted => write!(f, "machine aborted (another rank failed)"),
        }
    }
}

impl std::error::Error for CommError {}

/// Why one rank stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankFailure {
    /// The rank body panicked (message captured).
    Panic(String),
    /// A [`FaultPlan`] crash fired on this rank.
    InjectedCrash,
    /// A blocking receive exceeded the watchdog — names the deadlock.
    Stuck {
        /// Rank the receive was matching on.
        from: usize,
        /// Tag the receive was matching on.
        tag: u64,
        /// How long it waited.
        waited: Duration,
    },
    /// A barrier wait exceeded the watchdog.
    StuckBarrier {
        /// How long it waited.
        waited: Duration,
    },
    /// A reliable send exhausted its retransmissions without an ack.
    SendStuck {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Retransmissions attempted.
        attempts: u32,
    },
    /// A send found the peer's endpoint already dropped.
    PeerGone {
        /// The dead peer.
        peer: usize,
    },
    /// The rank shut down cooperatively after another rank failed.
    Aborted,
}

impl RankFailure {
    /// Lower = more likely the root cause (used to pick the headline
    /// failure when several ranks report).
    fn severity(&self) -> u8 {
        match self {
            RankFailure::Panic(_) | RankFailure::InjectedCrash => 0,
            RankFailure::Stuck { .. }
            | RankFailure::StuckBarrier { .. }
            | RankFailure::SendStuck { .. } => 1,
            RankFailure::PeerGone { .. } => 2,
            RankFailure::Aborted => 3,
        }
    }
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankFailure::Panic(msg) => write!(f, "panicked: {msg}"),
            RankFailure::InjectedCrash => write!(f, "crashed (injected fault)"),
            RankFailure::Stuck { from, tag, waited } => {
                write!(f, "stuck receiving (from={from}, tag={tag}) for {waited:?}")
            }
            RankFailure::StuckBarrier { waited } => write!(f, "stuck at barrier for {waited:?}"),
            RankFailure::SendStuck { to, tag, attempts } => {
                write!(f, "send to rank {to} (tag {tag}) unacked after {attempts} attempts")
            }
            RankFailure::PeerGone { peer } => write!(f, "peer rank {peer} hung up"),
            RankFailure::Aborted => write!(f, "aborted after another rank failed"),
        }
    }
}

/// A machine run failed: at least one rank died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineError {
    /// The rank identified as the root cause.
    pub rank: usize,
    /// Its failure.
    pub failure: RankFailure,
    /// Every failure reported, sorted by rank.
    pub all: Vec<(usize, RankFailure)>,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} {} ({} rank(s) reported failures)",
            self.rank,
            self.failure,
            self.all.len()
        )
    }
}

impl std::error::Error for MachineError {}

/// State shared by all ranks of one machine run.
struct Shared {
    abort: AtomicBool,
    failures: Mutex<Vec<(usize, RankFailure)>>,
    /// Ranks whose endpoint has been dropped (finished or died); finished
    /// reliable endpoints keep draining their inbox until all are done.
    done: AtomicUsize,
    bar_m: Mutex<BarrierState>,
    bar_cv: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Set just before a *controlled* abort panic so the global hook
    /// stays silent; real user panics still print a backtrace.
    static QUIET_PANIC: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANIC.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Unwind this rank with a structured failure (classified in `run`).
pub(crate) fn die(failure: RankFailure) -> ! {
    QUIET_PANIC.with(|q| q.set(true));
    std::panic::panic_any(failure);
}

fn classify(payload: Box<dyn Any + Send>) -> RankFailure {
    match payload.downcast::<RankFailure>() {
        Ok(f) => *f,
        Err(p) => {
            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            RankFailure::Panic(msg)
        }
    }
}

/// Per-rank metric sink with precomputed counter keys, so the hot send
/// and receive paths never format strings. Rank bodies run on worker
/// threads, so only counters/histograms are recorded here — never spans
/// (those nest on the control thread).
struct CommMetrics {
    m: Metrics,
    sent_msgs: String,
    sent_values: String,
    recv_msgs: String,
    recv_values: String,
    retries: String,
    timeouts: String,
    barrier_wait_ns: String,
    agg_sent_msgs: String,
    agg_sent_values: String,
    agg_recv_msgs: String,
}

impl CommMetrics {
    fn new(rank: usize, m: Metrics) -> Self {
        let key = |suffix: &str| format!("comm.r{rank}.{suffix}");
        CommMetrics {
            m,
            sent_msgs: key("sent_msgs"),
            sent_values: key("sent_values"),
            recv_msgs: key("recv_msgs"),
            recv_values: key("recv_values"),
            retries: key("retries"),
            timeouts: key("recv_timeouts"),
            barrier_wait_ns: key("barrier_wait_ns"),
            agg_sent_msgs: key("agg_sent_msgs"),
            agg_sent_values: key("agg_sent_values"),
            agg_recv_msgs: key("agg_recv_msgs"),
        }
    }
}

/// Per-rank communication endpoint.
pub struct Comm {
    rank: usize,
    nranks: usize,
    inbox: Receiver<Msg>,
    peers: Vec<Sender<Msg>>,
    shared: Arc<Shared>,
    cfg: MachineConfig,
    faults: Option<Arc<FaultPlan>>,
    reliable: bool,
    /// Out-of-order messages waiting for a matching recv.
    stash: RefCell<VecDeque<Msg>>,
    /// Reliable transport: next sequence number per (dst, tag).
    send_seq: RefCell<HashMap<(usize, u64), u64>>,
    /// Reliable transport: next expected sequence per (src, tag).
    recv_seq: RefCell<HashMap<(usize, u64), u64>>,
    /// The ack a reliable send is currently blocked on: (peer, tag, seq).
    awaiting_ack: Cell<Option<(usize, u64, u64)>>,
    /// Physical sends issued (feeds deterministic fault decisions).
    phys_sends: Cell<u64>,
    /// User-level communication ops issued (feeds crash injection).
    ops: Cell<u64>,
    /// Point-to-point physical messages sent (includes retries and acks
    /// when the reliable transport is active).
    pub sent_msgs: Cell<u64>,
    /// Total f64s sent point-to-point.
    pub sent_values: Cell<u64>,
    /// Vectored (aggregated) messages sent via [`Comm::send_vectored`].
    pub agg_sent_msgs: Cell<u64>,
    /// Total f64s sent through vectored messages.
    pub agg_sent_values: Cell<u64>,
    /// Optional per-rank metric sink (see [`Comm::install_metrics`]).
    metrics: RefCell<Option<CommMetrics>>,
}

impl Comm {
    /// This endpoint's rank in `0..nranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Attach a metric sink to this endpoint. Traffic is recorded under
    /// rank-qualified counters (`comm.r<rank>.sent_msgs`, `.sent_values`,
    /// `.recv_msgs`, `.recv_values`, `.retries`, `.recv_timeouts`,
    /// `.barrier_wait_ns`). A null sink is a no-op install.
    pub fn install_metrics(&self, metrics: &Metrics) {
        if metrics.is_enabled() {
            *self.metrics.borrow_mut() = Some(CommMetrics::new(self.rank, metrics.clone()));
        }
    }

    /// Record `f(keys) -> (key, delta)` against the installed sink, if any.
    #[inline]
    fn note(&self, f: impl Fn(&CommMetrics) -> (&str, u64)) {
        if let Some(cm) = self.metrics.borrow().as_ref() {
            let (key, delta) = f(cm);
            cm.m.incr(key, delta);
        }
    }

    /// Count a user-level communication op and fire a planned crash.
    fn user_op(&self) {
        let op = self.ops.get();
        self.ops.set(op + 1);
        if let Some(fp) = &self.faults {
            if fp.should_crash(self.rank, op) {
                die(RankFailure::InjectedCrash);
            }
        }
    }

    fn aborted(&self) -> bool {
        self.shared.abort.load(Ordering::Relaxed)
    }

    // ---- physical layer -------------------------------------------------

    /// Push one message to `to`'s inbox, applying fault injection to
    /// non-collective traffic.
    fn send_physical(&self, to: usize, tag: u64, mut data: Vec<f64>) {
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_values.set(self.sent_values.get() + data.len() as u64);
        self.note(|cm| (&cm.sent_msgs, 1));
        self.note(|cm| (&cm.sent_values, data.len() as u64));
        if tag & COLL_TAG == 0 {
            if let Some(fp) = &self.faults {
                let counter = self.phys_sends.get();
                self.phys_sends.set(counter + 1);
                match fp.decide(self.rank, to, tag, counter, data.len()) {
                    FaultAction::Deliver => {}
                    FaultAction::Drop => return,
                    FaultAction::Duplicate => {
                        let copy = Msg { src: self.rank, tag, data: data.clone() };
                        let _ = self.peers[to].send(copy);
                    }
                    FaultAction::Corrupt { word, bit } => {
                        let bits = data[word].to_bits() ^ (1u64 << bit);
                        data[word] = f64::from_bits(bits);
                    }
                    FaultAction::Delay => std::thread::sleep(fp.delay_duration()),
                }
            }
        }
        if self.peers[to].send(Msg { src: self.rank, tag, data }).is_err() {
            die(RankFailure::PeerGone { peer: to });
        }
    }

    /// Checksum binding an envelope to its route, tag, and sequence.
    fn envelope_checksum(src: usize, dst: usize, tag: u64, seq: u64, payload: &[f64]) -> u64 {
        fnv1a64(
            [src as u64, dst as u64, tag, seq]
                .into_iter()
                .chain(payload.iter().map(|x| x.to_bits())),
        )
    }

    fn send_ack(&self, to: usize, tag: u64, seq: u64) {
        self.send_physical(to, ACK_TAG, vec![f64::from_bits(tag), f64::from_bits(seq)]);
    }

    /// Handle one raw arrival. Returns the user-visible message, or `None`
    /// if the arrival was consumed by the transport (ack, duplicate,
    /// corrupt envelope).
    fn process_arrival(&self, mut msg: Msg) -> Option<Msg> {
        if msg.tag == ACK_TAG {
            if msg.data.len() == 2 {
                if let Some((peer, tag, seq)) = self.awaiting_ack.get() {
                    if msg.src == peer
                        && msg.data[0].to_bits() == tag
                        && msg.data[1].to_bits() == seq
                    {
                        return Some(msg);
                    }
                }
            }
            return None; // stale ack from an already-satisfied retransmission
        }
        if self.reliable && msg.tag & COLL_TAG == 0 {
            if msg.data.len() < 2 {
                return None; // mangled beyond recognition
            }
            let seq = msg.data[0].to_bits();
            let ck = msg.data[1].to_bits();
            let payload = &msg.data[2..];
            if ck != Self::envelope_checksum(msg.src, self.rank, msg.tag, seq, payload) {
                if let Some(fp) = &self.faults {
                    fp.note_detected_corrupt();
                }
                return None; // no ack => sender retransmits
            }
            let expected = {
                let mut seqs = self.recv_seq.borrow_mut();
                *seqs.entry((msg.src, msg.tag)).or_insert(0)
            };
            if seq < expected {
                if let Some(fp) = &self.faults {
                    fp.note_detected_duplicate();
                }
                self.send_ack(msg.src, msg.tag, seq); // the original ack was lost
                return None;
            }
            // FIFO channels + stop-and-wait make a gap impossible.
            debug_assert_eq!(seq, expected, "reliable transport sequence gap");
            if seq != expected {
                return None;
            }
            self.recv_seq.borrow_mut().insert((msg.src, msg.tag), seq + 1);
            self.send_ack(msg.src, msg.tag, seq);
            msg.data.drain(..2);
            self.note(|cm| (&cm.recv_msgs, 1));
            self.note(|cm| (&cm.recv_values, msg.data.len() as u64));
            return Some(msg);
        }
        self.note(|cm| (&cm.recv_msgs, 1));
        self.note(|cm| (&cm.recv_values, msg.data.len() as u64));
        Some(msg)
    }

    /// Drain every available arrival through the transport layer without
    /// blocking; user messages are stashed for later receives. Keeps the
    /// reliable transport live (re-acking retransmissions whose acks were
    /// lost) from wait points that do not otherwise read the inbox.
    fn pump_inbox(&self) {
        while let Ok(raw) = self.inbox.try_recv() {
            if let Some(m) = self.process_arrival(raw) {
                self.stash.borrow_mut().push_back(m);
            }
        }
    }

    fn take_stashed(&self, from: usize, tag: u64) -> Option<Vec<f64>> {
        let mut stash = self.stash.borrow_mut();
        let pos = stash.iter().position(|m| m.src == from && m.tag == tag)?;
        Some(stash.remove(pos).expect("position valid").data)
    }

    /// Core matching receive. With `user_timeout`, returns
    /// `CommError::Timeout` at that deadline; without, the machine
    /// watchdog is the deadline.
    fn recv_match(
        &self,
        from: usize,
        tag: u64,
        user_timeout: Option<Duration>,
    ) -> Result<Vec<f64>, CommError> {
        if let Some(data) = self.take_stashed(from, tag) {
            return Ok(data);
        }
        let start = Instant::now();
        loop {
            if self.aborted() {
                return Err(CommError::Aborted);
            }
            match self.inbox.recv_timeout(self.cfg.poll) {
                Ok(raw) => {
                    if let Some(m) = self.process_arrival(raw) {
                        if m.src == from && m.tag == tag {
                            return Ok(m.data);
                        }
                        self.stash.borrow_mut().push_back(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("endpoint holds its own sender; inbox cannot disconnect")
                }
            }
            let waited = start.elapsed();
            let deadline = user_timeout.unwrap_or(self.cfg.watchdog);
            if waited >= deadline {
                self.note(|cm| (&cm.timeouts, 1));
                return Err(CommError::Timeout { from, tag, waited });
            }
        }
    }

    /// Infallible receive used internally; converts errors into a
    /// structured rank death.
    fn recv_or_die(&self, from: usize, tag: u64) -> Vec<f64> {
        match self.recv_match(from, tag, None) {
            Ok(data) => data,
            Err(CommError::Aborted) => die(RankFailure::Aborted),
            Err(CommError::Timeout { from, tag, waited }) => {
                die(RankFailure::Stuck { from, tag, waited })
            }
        }
    }

    /// Stop-and-wait reliable send: frame with (seq, checksum), then
    /// retransmit until the matching ack arrives. Incoming data
    /// envelopes are still processed (and acked) while waiting, so two
    /// ranks sending to each other cannot deadlock.
    fn send_reliable(&self, to: usize, tag: u64, data: Vec<f64>) {
        let seq = {
            let mut seqs = self.send_seq.borrow_mut();
            let e = seqs.entry((to, tag)).or_insert(0);
            let s = *e;
            *e += 1;
            s
        };
        let ck = Self::envelope_checksum(self.rank, to, tag, seq, &data);
        let mut framed = Vec::with_capacity(data.len() + 2);
        framed.push(f64::from_bits(seq));
        framed.push(f64::from_bits(ck));
        framed.extend_from_slice(&data);
        for attempt in 0..self.cfg.max_retries {
            if attempt > 0 {
                self.note(|cm| (&cm.retries, 1));
            }
            self.send_physical(to, tag, framed.clone());
            if self.wait_ack(to, tag, seq) {
                return;
            }
            if self.aborted() {
                die(RankFailure::Aborted);
            }
        }
        die(RankFailure::SendStuck { to, tag, attempts: self.cfg.max_retries });
    }

    /// Pump the inbox until the ack for `(to, tag, seq)` arrives or the
    /// retry timeout expires.
    fn wait_ack(&self, to: usize, tag: u64, seq: u64) -> bool {
        self.awaiting_ack.set(Some((to, tag, seq)));
        let start = Instant::now();
        let acked = loop {
            if self.aborted() {
                break false;
            }
            if start.elapsed() >= self.cfg.retry_timeout {
                break false;
            }
            match self.inbox.recv_timeout(self.cfg.poll.min(self.cfg.retry_timeout)) {
                Ok(raw) => {
                    if let Some(m) = self.process_arrival(raw) {
                        if m.tag == ACK_TAG {
                            break true; // process_arrival only passes the awaited ack
                        }
                        self.stash.borrow_mut().push_back(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("endpoint holds its own sender; inbox cannot disconnect")
                }
            }
        };
        self.awaiting_ack.set(None);
        acked
    }

    // ---- public point-to-point ------------------------------------------

    /// Send `data` to `to` with a user `tag` (top two bits reserved).
    /// With the reliable transport active this blocks until acked.
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        self.user_op();
        debug_assert_eq!(tag & (COLL_TAG | ACK_TAG), 0, "top tag bits are reserved");
        if self.reliable {
            self.send_reliable(to, tag, data);
        } else {
            self.send_physical(to, tag, data);
        }
    }

    /// Blocking receive matching `(from, tag)`; out-of-order arrivals are
    /// stashed and delivered to later matching receives. If the machine
    /// watchdog expires, the rank dies with [`RankFailure::Stuck`] —
    /// deadlocks become reports, not hangs.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        self.user_op();
        debug_assert_eq!(tag & (COLL_TAG | ACK_TAG), 0, "top tag bits are reserved");
        self.recv_or_die(from, tag)
    }

    /// Vectored send: concatenate `parts` into one physical message to
    /// `to`. One call issues exactly one [`Comm::send`], so the payload
    /// inherits the reliable transport (seq + checksum + retries), the
    /// timeout plumbing, and the per-rank metrics unchanged. The receiver
    /// recovers the parts with [`Comm::recv_vectored`] using the same
    /// lengths, which both sides must derive deterministically (the
    /// aggregated ghost exchange derives them from the replicated plan).
    pub fn send_vectored(&self, to: usize, tag: u64, parts: &[&[f64]]) {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut data = Vec::with_capacity(total);
        for p in parts {
            data.extend_from_slice(p);
        }
        self.agg_sent_msgs.set(self.agg_sent_msgs.get() + 1);
        self.agg_sent_values.set(self.agg_sent_values.get() + total as u64);
        self.note(|cm| (&cm.agg_sent_msgs, 1));
        self.note(|cm| (&cm.agg_sent_values, total as u64));
        self.send(to, tag, data)
    }

    /// Vectored receive: one blocking [`Comm::recv`] matching
    /// `(from, tag)`, split back into parts of the given `lens`. Panics if
    /// the received length does not equal `lens.iter().sum()` — a length
    /// mismatch means sender and receiver disagree on the (replicated)
    /// packing schedule, which is a protocol bug, not a runtime condition.
    pub fn recv_vectored(&self, from: usize, tag: u64, lens: &[usize]) -> Vec<Vec<f64>> {
        let data = self.recv(from, tag);
        let total: usize = lens.iter().sum();
        assert_eq!(
            data.len(),
            total,
            "vectored recv length mismatch from rank {from} tag {tag:#x}"
        );
        self.note(|cm| (&cm.agg_recv_msgs, 1));
        let mut out = Vec::with_capacity(lens.len());
        let mut off = 0;
        for &l in lens {
            out.push(data[off..off + l].to_vec());
            off += l;
        }
        out
    }

    /// Receive matching `(from, tag)`, waiting at most `timeout`.
    pub fn recv_timeout(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        self.user_op();
        debug_assert_eq!(tag & (COLL_TAG | ACK_TAG), 0, "top tag bits are reserved");
        self.recv_match(from, tag, Some(timeout))
    }

    /// Non-blocking receive: drains arrivals, then returns a matching
    /// message if one is waiting.
    pub fn try_recv(&self, from: usize, tag: u64) -> Result<Option<Vec<f64>>, CommError> {
        self.user_op();
        debug_assert_eq!(tag & (COLL_TAG | ACK_TAG), 0, "top tag bits are reserved");
        if self.aborted() {
            return Err(CommError::Aborted);
        }
        loop {
            match self.inbox.try_recv() {
                Ok(raw) => {
                    if let Some(m) = self.process_arrival(raw) {
                        self.stash.borrow_mut().push_back(m);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    unreachable!("endpoint holds its own sender; inbox cannot disconnect")
                }
            }
        }
        Ok(self.take_stashed(from, tag))
    }

    // ---- barrier & collectives ------------------------------------------

    /// Synchronize all ranks. Watchdogged and abortable: if another rank
    /// dies, waiters shut down instead of blocking forever.
    pub fn barrier(&self) {
        self.user_op();
        let sh = &self.shared;
        let mut g = lock_unpoisoned(&sh.bar_m);
        let gen = g.generation;
        g.count += 1;
        if g.count == self.nranks {
            g.count = 0;
            g.generation += 1;
            drop(g);
            sh.bar_cv.notify_all();
            return;
        }
        let start = Instant::now();
        while g.generation == gen {
            if self.aborted() {
                drop(g);
                die(RankFailure::Aborted);
            }
            let waited = start.elapsed();
            if waited >= self.cfg.watchdog {
                drop(g);
                die(RankFailure::StuckBarrier { waited });
            }
            let (g2, _) = sh
                .bar_cv
                .wait_timeout(g, self.cfg.poll)
                .unwrap_or_else(|p| p.into_inner());
            g = g2;
            if self.reliable {
                // A peer may be retransmitting a message whose ack was
                // dropped; re-ack it or it burns its whole retry budget
                // against a rank parked silently at this barrier.
                drop(g);
                self.pump_inbox();
                g = lock_unpoisoned(&sh.bar_m);
            }
        }
        drop(g);
        self.note(|cm| (&cm.barrier_wait_ns, start.elapsed().as_nanos() as u64));
    }

    /// All-reduce a vector elementwise with `op`; every rank gets the
    /// result. Gather-to-root + broadcast (tree depth is modeled, not
    /// implemented — correctness here, cost in `costmodel`).
    pub fn allreduce_vec(&self, mut data: Vec<f64>, op: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        self.user_op();
        if self.nranks == 1 {
            return data;
        }
        if self.rank == 0 {
            for src in 1..self.nranks {
                let theirs = self.recv_or_die(src, COLL_TAG);
                assert_eq!(theirs.len(), data.len(), "allreduce length mismatch");
                for (a, b) in data.iter_mut().zip(theirs) {
                    *a = op(*a, b);
                }
            }
            for dst in 1..self.nranks {
                self.send_physical(dst, COLL_TAG | 1, data.clone());
            }
            data
        } else {
            self.send_physical(0, COLL_TAG, data);
            self.recv_or_die(0, COLL_TAG | 1)
        }
    }

    /// All-reduce a scalar.
    pub fn allreduce(&self, x: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        self.allreduce_vec(vec![x], op)[0]
    }

    /// Global minimum (the CFL reduction).
    pub fn allreduce_min(&self, x: f64) -> f64 {
        self.allreduce(x, f64::min)
    }

    /// Global maximum.
    pub fn allreduce_max(&self, x: f64) -> f64 {
        self.allreduce(x, f64::max)
    }

    /// Global sum.
    pub fn allreduce_sum(&self, x: f64) -> f64 {
        self.allreduce(x, |a, b| a + b)
    }

    /// Gather variable-length vectors to every rank (allgatherv):
    /// `result[r]` is rank r's contribution.
    pub fn allgatherv(&self, data: Vec<f64>) -> Vec<Vec<f64>> {
        self.user_op();
        if self.nranks == 1 {
            return vec![data];
        }
        if self.rank == 0 {
            let mut all = vec![Vec::new(); self.nranks];
            all[0] = data;
            for (src, slot) in all.iter_mut().enumerate().skip(1) {
                *slot = self.recv_or_die(src, COLL_TAG | 2);
            }
            // broadcast as a flattened stream with a length header
            let mut flat = Vec::new();
            flat.push(self.nranks as f64);
            for part in &all {
                flat.push(part.len() as f64);
            }
            for part in &all {
                flat.extend_from_slice(part);
            }
            for dst in 1..self.nranks {
                self.send_physical(dst, COLL_TAG | 3, flat.clone());
            }
            all
        } else {
            self.send_physical(0, COLL_TAG | 2, data);
            let flat = self.recv_or_die(0, COLL_TAG | 3);
            let n = flat[0] as usize;
            let lens: Vec<usize> = (0..n).map(|i| flat[1 + i] as usize).collect();
            let mut out = Vec::with_capacity(n);
            let mut off = 1 + n;
            for len in lens {
                out.push(flat[off..off + len].to_vec());
                off += len;
            }
            out
        }
    }

    /// Broadcast from `root` to all; returns the payload everywhere.
    pub fn broadcast(&self, root: usize, data: Vec<f64>) -> Vec<f64> {
        self.user_op();
        if self.nranks == 1 {
            return data;
        }
        if self.rank == root {
            for dst in 0..self.nranks {
                if dst != root {
                    self.send_physical(dst, COLL_TAG | 4, data.clone());
                }
            }
            data
        } else {
            self.recv_or_die(root, COLL_TAG | 4)
        }
    }
}

impl Drop for Comm {
    /// Linger-on-close for the reliable transport. A rank that finishes
    /// keeps its inbox alive until every rank is done, re-acking
    /// retransmissions whose acks were lost in flight; without this, a
    /// peer still in ack-retry would watch this endpoint vanish
    /// (`PeerGone`) even though its message *was* delivered. Dying ranks
    /// skip the drain — their peers are redirected by the abort flag.
    fn drop(&mut self) {
        self.shared.done.fetch_add(1, Ordering::SeqCst);
        if !self.reliable || std::thread::panicking() {
            return;
        }
        let start = Instant::now();
        while self.shared.done.load(Ordering::SeqCst) < self.nranks
            && !self.aborted()
            && start.elapsed() < self.cfg.watchdog
        {
            if let Ok(raw) = self.inbox.recv_timeout(self.cfg.poll) {
                let _ = self.process_arrival(raw);
            }
        }
    }
}

/// The machine: spawns ranks and collects their results.
pub struct Machine;

impl Machine {
    /// Run `f` on `nranks` ranks (threads); returns per-rank results in
    /// rank order, or a [`MachineError`] naming the rank that died.
    pub fn run<T, F>(nranks: usize, f: F) -> Result<Vec<T>, MachineError>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        Self::run_with(MachineConfig::default(), None, nranks, f)
    }

    /// [`Machine::run`] with explicit timeouts and an optional fault
    /// plan. Attaching a plan auto-enables the reliable transport
    /// (override with `cfg.reliable`).
    pub fn run_with<T, F>(
        cfg: MachineConfig,
        faults: Option<Arc<FaultPlan>>,
        nranks: usize,
        f: F,
    ) -> Result<Vec<T>, MachineError>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        assert!(nranks >= 1);
        install_quiet_hook();
        if let Some(fp) = &faults {
            fp.begin_attempt();
        }
        let reliable = cfg.reliable.unwrap_or(faults.is_some());
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (s, r) = channel();
            senders.push(s);
            receivers.push(r);
        }
        let shared = Arc::new(Shared {
            abort: AtomicBool::new(false),
            failures: Mutex::new(Vec::new()),
            done: AtomicUsize::new(0),
            bar_m: Mutex::new(BarrierState { count: 0, generation: 0 }),
            bar_cv: Condvar::new(),
        });
        let mut comms: Vec<Comm> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Comm {
                rank,
                nranks,
                inbox,
                peers: senders.clone(),
                shared: shared.clone(),
                cfg: cfg.clone(),
                faults: faults.clone(),
                reliable,
                stash: RefCell::new(VecDeque::new()),
                send_seq: RefCell::new(HashMap::new()),
                recv_seq: RefCell::new(HashMap::new()),
                awaiting_ack: Cell::new(None),
                phys_sends: Cell::new(0),
                ops: Cell::new(0),
                sent_msgs: Cell::new(0),
                sent_values: Cell::new(0),
                agg_sent_msgs: Cell::new(0),
                agg_sent_values: Cell::new(0),
                metrics: RefCell::new(None),
            })
            .collect();
        drop(senders);
        let f = &f;
        let results: Vec<Option<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .drain(..)
                .map(|comm| {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let rank = comm.rank;
                        // `comm` (and with it this rank's inbox) is dropped
                        // during the unwind, so peers see the death promptly.
                        let out = catch_unwind(AssertUnwindSafe(|| f(comm)));
                        QUIET_PANIC.with(|q| q.set(false));
                        match out {
                            Ok(v) => Some(v),
                            Err(payload) => {
                                let failure = classify(payload);
                                shared.abort.store(true, Ordering::SeqCst);
                                lock_unpoisoned(&shared.failures).push((rank, failure));
                                shared.bar_cv.notify_all();
                                None
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank wrapper never panics"))
                .collect()
        });
        let mut failures = std::mem::take(&mut *lock_unpoisoned(&shared.failures));
        if failures.is_empty() {
            Ok(results
                .into_iter()
                .map(|r| r.expect("no failure recorded, so every rank returned"))
                .collect())
        } else {
            let (rank, failure) = failures
                .iter()
                .min_by_key(|(_, f)| f.severity())
                .expect("non-empty")
                .clone();
            failures.sort_by_key(|(r, _)| *r);
            Err(MachineError { rank, failure, all: failures })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_trivial() {
        let out = Machine::run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.nranks(), 1);
            c.allreduce_sum(5.0)
        })
        .unwrap();
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = Machine::run(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, 7, vec![c.rank() as f64]);
            let got = c.recv(prev, 7);
            got[0]
        })
        .unwrap();
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = Machine::run(2, |c| {
            if c.rank() == 0 {
                // send two tags; peer receives in opposite order
                c.send(1, 1, vec![10.0]);
                c.send(1, 2, vec![20.0]);
                0.0
            } else {
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                a[0] + b[0]
            }
        })
        .unwrap();
        assert_eq!(out[1], 30.0);
    }

    #[test]
    fn allreduce_ops() {
        let out = Machine::run(5, |c| {
            let r = c.rank() as f64;
            (c.allreduce_sum(r), c.allreduce_min(r), c.allreduce_max(r))
        })
        .unwrap();
        for (s, lo, hi) in out {
            assert_eq!(s, 10.0);
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 4.0);
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Machine::run(3, |c| {
            let r = c.rank() as f64;
            c.allreduce_vec(vec![r, 10.0 * r], |a, b| a + b)
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![3.0, 30.0]);
        }
    }

    #[test]
    fn allgatherv_variable_lengths() {
        let out = Machine::run(3, |c| {
            let mine: Vec<f64> = (0..=c.rank()).map(|i| i as f64).collect();
            c.allgatherv(mine)
        })
        .unwrap();
        for parts in out {
            assert_eq!(parts[0], vec![0.0]);
            assert_eq!(parts[1], vec![0.0, 1.0]);
            assert_eq!(parts[2], vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = Machine::run(4, |c| {
            let data = if c.rank() == 2 { vec![42.0, 43.0] } else { Vec::new() };
            c.broadcast(2, data)
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![42.0, 43.0]);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Machine::run(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // after the barrier every rank must see all increments
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        })
        .unwrap();
    }

    #[test]
    fn counters_track_traffic() {
        let out = Machine::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1.0, 2.0, 3.0]);
            } else {
                c.recv(0, 0);
            }
            c.barrier();
            (c.sent_msgs.get(), c.sent_values.get())
        })
        .unwrap();
        assert_eq!(out[0], (1, 3));
        assert_eq!(out[1], (0, 0));
    }

    #[test]
    fn many_ranks_stress() {
        // 32 ranks exchanging with all peers
        let out = Machine::run(32, |c| {
            for to in 0..c.nranks() {
                if to != c.rank() {
                    c.send(to, 9, vec![c.rank() as f64]);
                }
            }
            let mut sum = 0.0;
            for from in 0..c.nranks() {
                if from != c.rank() {
                    sum += c.recv(from, 9)[0];
                }
            }
            sum
        })
        .unwrap();
        let want: f64 = (0..32).sum::<i64>() as f64;
        for (r, s) in out.iter().enumerate() {
            assert_eq!(*s, want - r as f64);
        }
    }

    // ---- fault tolerance -------------------------------------------------

    #[test]
    fn panicking_rank_is_reported_not_hung() {
        let err = Machine::run_with(MachineConfig::fast(), None, 3, |c| {
            if c.rank() == 1 {
                panic!("boom at rank 1");
            }
            c.barrier();
            c.rank()
        })
        .unwrap_err();
        assert_eq!(err.rank, 1);
        assert!(
            matches!(err.failure, RankFailure::Panic(ref m) if m.contains("boom")),
            "{err}"
        );
        // survivors reported their cooperative shutdown
        assert!(err.all.len() >= 2, "{err}");
    }

    #[test]
    fn deadlock_becomes_stuck_report() {
        let err = Machine::run_with(MachineConfig::fast(), None, 2, |c| {
            // both ranks receive messages nobody sends
            let tag = 70 + c.rank() as u64;
            c.recv(1 - c.rank(), tag)
        })
        .unwrap_err();
        let stuck = err
            .all
            .iter()
            .filter(|(_, f)| matches!(f, RankFailure::Stuck { .. }))
            .count();
        assert!(stuck >= 1, "{err}");
        if let RankFailure::Stuck { from, tag, .. } = err.failure {
            assert_eq!(from, 1 - err.rank);
            assert_eq!(tag, 70 + err.rank as u64);
        } else {
            panic!("expected Stuck root cause, got {err}");
        }
    }

    #[test]
    fn recv_timeout_is_typed_and_bounded() {
        let out = Machine::run_with(MachineConfig::fast(), None, 2, |c| {
            if c.rank() == 0 {
                let r = c.recv_timeout(1, 5, Duration::from_millis(40));
                c.barrier();
                matches!(r, Err(CommError::Timeout { from: 1, tag: 5, .. }))
            } else {
                c.barrier();
                true
            }
        })
        .unwrap();
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn try_recv_sees_sent_message_after_barrier() {
        let out = Machine::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 11, vec![9.0]);
                c.barrier();
                true
            } else {
                assert_eq!(c.try_recv(0, 12).unwrap(), None);
                c.barrier();
                let got = c.try_recv(0, 11).unwrap();
                got == Some(vec![9.0])
            }
        })
        .unwrap();
        assert!(out[1]);
    }

    #[test]
    fn injected_crash_is_identified() {
        let plan = Arc::new(FaultPlan::new(3).crash_rank(2, 5));
        let err = Machine::run_with(MachineConfig::fast(), Some(plan), 4, |c| {
            for _ in 0..10 {
                c.barrier();
            }
        })
        .unwrap_err();
        assert_eq!(err.rank, 2, "{err}");
        assert_eq!(err.failure, RankFailure::InjectedCrash);
    }

    #[test]
    fn reliable_transport_exactly_once_under_faults() {
        let plan = Arc::new(
            FaultPlan::new(42)
                .drop_messages(0.25)
                .duplicate_messages(0.15)
                .corrupt_messages(0.15),
        );
        let n = 20;
        let out = Machine::run_with(MachineConfig::fast(), Some(plan.clone()), 3, move |c| {
            let next = (c.rank() + 1) % 3;
            let prev = (c.rank() + 2) % 3;
            for i in 0..n {
                c.send(next, 3, vec![i as f64, c.rank() as f64]);
            }
            let mut got = Vec::new();
            for _ in 0..n {
                let m = c.recv(prev, 3);
                assert_eq!(m[1] as usize, prev);
                got.push(m[0] as i64);
            }
            got
        })
        .unwrap();
        // exactly-once, in-order delivery despite drops/dups/corruption
        let want: Vec<i64> = (0..n as i64).collect();
        for g in out {
            assert_eq!(g, want);
        }
        let stats = plan.stats();
        assert!(stats.dropped > 0, "plan never dropped anything: {stats:?}");
        assert!(
            stats.detected_corrupt > 0 || stats.corrupted == 0,
            "corruption must be caught: {stats:?}"
        );
    }

    #[test]
    fn delayed_messages_still_deliver() {
        let plan = Arc::new(FaultPlan::new(8).delay_messages(0.5, Duration::from_millis(2)));
        let out = Machine::run_with(MachineConfig::fast(), Some(plan.clone()), 2, |c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send(1, 1, vec![i as f64]);
                }
                0
            } else {
                (0..10).map(|_| c.recv(0, 1)[0] as i64).sum()
            }
        })
        .unwrap();
        assert_eq!(out[1], 45);
        assert!(plan.stats().delayed > 0);
    }

    #[test]
    fn crash_mid_exchange_names_the_dead_rank() {
        // rank 1 dies after its first op; ranks 0 and 2 wait on it
        let plan = Arc::new(FaultPlan::new(0).crash_rank(1, 1));
        let err = Machine::run_with(MachineConfig::fast(), Some(plan), 3, |c| {
            if c.rank() == 1 {
                c.barrier(); // op 0
                c.barrier(); // op 1: crash fires here
                c.send(0, 2, vec![1.0]);
            } else {
                c.barrier();
                c.barrier();
                if c.rank() == 0 {
                    let _ = c.recv(1, 2);
                }
            }
        })
        .unwrap_err();
        assert_eq!(err.rank, 1, "{err}");
        assert_eq!(err.failure, RankFailure::InjectedCrash);
    }
}

//! Shared-memory parallel executor (scoped std threads).
//!
//! The paper claims the data structure is "particularly well suited to
//! high-performance machines, both serial and parallel". This module is
//! the shared-memory side of that claim: blocks are the natural
//! parallelization unit — RHS kernels per block are embarrassingly
//! parallel, and ghost exchange becomes a two-phase **gather/scatter**
//! (gather reads only sources, scatter writes only destinations), each
//! phase running over the [`crate::pool`] helpers with no locks.
//!
//! `ParStepper` reproduces `ablock_solver::Stepper`'s SSP-RK2 semantics
//! exactly (the equivalence test below checks bitwise-level agreement);
//! only the execution order across blocks differs, and no arithmetic
//! crosses block boundaries outside the ghost plan. Flux sweeps are
//! issued in the [`SolverConfig`] partitioner's space-filling-curve
//! order (cached by topology epoch), so spatially adjacent blocks land
//! on the same worker's contiguous chunk — a bitwise-neutral permutation
//! that improves ghost-source cache reuse.

use std::collections::HashMap;

use crate::pool;

use ablock_core::arena::BlockId;
use ablock_core::field::{FieldBlock, FieldShape};
use ablock_core::ghost::{synthesize_boundary, GhostConfig, GhostExchange, GhostTask};
use ablock_core::grid::{BlockGrid, BlockNode};
use ablock_core::index::IBox;
use ablock_core::ops::{prolong, restrict_avg, ProlongOrder};
use ablock_core::partition::CurveWalk;
use ablock_obs::{phase, Metrics};

use ablock_solver::config::{SolverConfig, TimeStepMode};
use ablock_solver::engine::{rk2_stage1_block, rk2_stage2_block, BcFn, SweepEngine};
use ablock_solver::kernel::{compute_rhs_block, compute_rhs_block_fluxes, max_rate_block};
use ablock_solver::physics::Physics;
use ablock_solver::subcycle::{self, SubcycleBackend, SubcycleState};

/// Disjoint mutable references `out[i] = &mut v[ids[i].index()]`;
/// `ids` must be strictly increasing by index (arena order is).
fn indexed_refs<'a, T>(v: &'a mut [T], ids: &[BlockId]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(ids.len());
    let mut rest = v;
    let mut offset = 0usize;
    for &id in ids {
        let idx = id.index();
        debug_assert!(idx >= offset, "ids must be strictly increasing");
        let (_, tail) = rest.split_at_mut(idx - offset);
        let (item, tail2) = tail.split_first_mut().expect("scratch too small");
        out.push(item);
        rest = tail2;
        offset = idx + 1;
    }
    out
}

/// Ghost values computed in the gather phase, ready to be written into one
/// destination block. `data` is variable-major (variable planes outer,
/// region cells x-fastest within a plane) — the natural order of both the
/// SoA field storage and the staging blocks the transfer operators fill.
struct ReadyOp<const D: usize> {
    region: IBox<D>,
    data: Vec<f64>,
}

/// Gather one non-physical task's destination values by reading only the
/// source block.
fn gather_task<const D: usize>(
    grid: &BlockGrid<D>,
    task: &GhostTask<D>,
    order: ProlongOrder,
) -> Option<(BlockId, ReadyOp<D>)> {
    let nvar = grid.params().nvar;
    match task {
        GhostTask::Physical { .. } | GhostTask::ClampCopy { .. } => None,
        GhostTask::Same { dst, src, region, shift } => {
            if region.is_empty() {
                return None;
            }
            let sf = grid.block(*src).field();
            let shape = *sf.shape();
            let ps = shape.plane_stride();
            let s = sf.as_slice();
            let mut data = Vec::with_capacity(region.volume() as usize * nvar);
            // plane by plane, x-row by x-row: rows are contiguous in the
            // source regardless of padding
            let mut row = *region;
            row.hi[0] = region.lo[0] + 1;
            let row_len = (region.hi[0] - region.lo[0]) as usize;
            for v in 0..nvar {
                for c in row.iter() {
                    let mut sc = c;
                    for d in 0..D {
                        sc[d] += shift[d];
                    }
                    let i0 = shape.lin(sc) + v * ps;
                    data.extend_from_slice(&s[i0..i0 + row_len]);
                }
            }
            Some((*dst, ReadyOp { region: *region, data }))
        }
        GhostTask::Restrict { dst, src, region, q, ratio } => {
            let extent = region.extent();
            let shape = FieldShape::new(extent, 0, nvar);
            let mut tmp = FieldBlock::zeros(shape);
            // temp coords c' = c - region.lo  =>  q' = ratio*region.lo + q
            let mut qp = *q;
            for d in 0..D {
                qp[d] += ratio * region.lo[d];
            }
            restrict_avg(&mut tmp, IBox::from_dims(extent), grid.block(*src).field(), qp, *ratio);
            Some((*dst, ReadyOp { region: *region, data: tmp.as_slice().to_vec() }))
        }
        GhostTask::Prolong { dst, src, region, p, a, ratio, valid } => {
            let extent = region.extent();
            let shape = FieldShape::new(extent, 0, nvar);
            let mut tmp = FieldBlock::zeros(shape);
            let mut pp = *p;
            for d in 0..D {
                pp[d] += region.lo[d];
            }
            prolong(
                &mut tmp,
                IBox::from_dims(extent),
                grid.block(*src).field(),
                pp,
                *a,
                *ratio,
                order,
                *valid,
            );
            Some((*dst, ReadyOp { region: *region, data: tmp.as_slice().to_vec() }))
        }
    }
}

/// Parallel ghost fill: each phase is gather (parallel over tasks, reads
/// only) then scatter (parallel over destination blocks, writes only).
pub fn par_fill_ghosts<const D: usize>(
    grid: &mut BlockGrid<D>,
    plan: &GhostExchange<D>,
    config: &GhostConfig,
) {
    par_fill_ghosts_with(grid, plan, config, &Metrics::null());
}

/// [`par_fill_ghosts`] with a metrics sink: the write-side scatter phase
/// (the inter-block data movement) is recorded under a
/// [`phase::COMM`] span, nested inside whatever span the caller holds.
pub fn par_fill_ghosts_with<const D: usize>(
    grid: &mut BlockGrid<D>,
    plan: &GhostExchange<D>,
    config: &GhostConfig,
    metrics: &Metrics,
) {
    for tasks in [plan.phase1(), plan.phase2()] {
        fill_phase(grid, tasks, config, metrics);
    }
}

/// Gather + scatter one phase of a ghost plan (the loop body of
/// [`par_fill_ghosts_with`], also used standalone by the comm/compute
/// overlap path, which scatters phase 2 itself).
fn fill_phase<const D: usize>(
    grid: &mut BlockGrid<D>,
    tasks: &[GhostTask<D>],
    config: &GhostConfig,
    metrics: &Metrics,
) {
    let layout = grid.layout().clone();
    let m = grid.params().block_dims;
    let ng = grid.params().nghost;
    // gather (immutable grid)
    let ready: Vec<(BlockId, ReadyOp<D>)> =
        pool::par_map(tasks, |t| gather_task(grid, t, config.prolong_order))
            .into_iter()
            .flatten()
            .collect();
    // group by destination
    let mut by_dst: HashMap<BlockId, Vec<ReadyOp<D>>> = HashMap::new();
    for (dst, op) in ready {
        by_dst.entry(dst).or_default().push(op);
    }
    let mut phys_by_dst: HashMap<BlockId, Vec<&GhostTask<D>>> = HashMap::new();
    for t in tasks {
        match t {
            GhostTask::Physical { dst, .. } | GhostTask::ClampCopy { dst, .. } => {
                phys_by_dst.entry(*dst).or_default().push(t);
            }
            _ => {}
        }
    }
    // scatter (mutable, one block per work item)
    let _comm = metrics.span(phase::COMM);
    let mut nodes: Vec<_> = grid.blocks_mut().collect();
    pool::par_for_each_mut(&mut nodes, |(id, node)| {
        if let Some(ops) = by_dst.get(id) {
            for op in ops {
                scatter_op(node.field_mut(), op);
            }
        }
        if let Some(ts) = phys_by_dst.get(id) {
            for t in ts {
                match t {
                    GhostTask::Physical { face, bc, .. } => {
                        let key = node.key();
                        synthesize_boundary(
                            &layout,
                            m,
                            ng,
                            key,
                            node.field_mut(),
                            *face,
                            *bc,
                            config,
                            &|_, _, _| {},
                        );
                    }
                    GhostTask::ClampCopy { region, .. } => {
                        for c in region.iter() {
                            let mut src = c;
                            for d in 0..D {
                                src[d] = src[d].clamp(0, m[d] - 1);
                            }
                            let u = node.field().cell(src).to_vec();
                            node.field_mut().set_cell(c, &u);
                        }
                    }
                    _ => {}
                }
            }
        }
    });
}

/// Write one gathered ghost region into a destination field.
fn scatter_op<const D: usize>(field: &mut FieldBlock<D>, op: &ReadyOp<D>) {
    if op.region.is_empty() {
        return;
    }
    let shape = *field.shape();
    let ps = shape.plane_stride();
    let out = field.as_mut_slice();
    let mut row = op.region;
    row.hi[0] = op.region.lo[0] + 1;
    let row_len = (op.region.hi[0] - op.region.lo[0]) as usize;
    let mut off = 0;
    for v in 0..shape.nvar {
        for c in row.iter() {
            let i0 = shape.lin(c) + v * ps;
            out[i0..i0 + row_len].copy_from_slice(&op.data[off..off + row_len]);
            off += row_len;
        }
    }
}

/// Shared-memory parallel stepper: SSP-RK2 with the same arithmetic as the
/// serial `Stepper` (both call the per-block helpers in
/// `ablock_solver::engine`), parallelized over blocks. The engine's
/// epoch-keyed cache makes stepping safe across grid adaptation without
/// manual invalidation.
pub struct ParStepper<const D: usize, P: Physics> {
    cfg: SolverConfig<P>,
    engine: SweepEngine<D>,
    sub: SubcycleState<D>,
    /// Flux-sweep issue order: block id -> SFC position under the
    /// config partitioner's curve, rebuilt when the topology epoch moves.
    sweep_pos: HashMap<BlockId, usize>,
    sweep_epoch: Option<u64>,
}

impl<const D: usize, P: Physics> ParStepper<D, P> {
    /// New parallel stepper from a [`SolverConfig`] (the same bundle the
    /// serial stepper and the distributed executor consume).
    pub fn new(cfg: SolverConfig<P>) -> Self {
        let engine = cfg.engine();
        ParStepper {
            cfg,
            engine,
            sub: SubcycleState::new(),
            sweep_pos: HashMap::new(),
            sweep_epoch: None,
        }
    }

    /// The configuration this stepper was built from.
    pub fn config(&self) -> &SolverConfig<P> {
        &self.cfg
    }

    /// The underlying sweep engine (plan cache stats).
    pub fn engine(&self) -> &SweepEngine<D> {
        &self.engine
    }

    /// Mutable engine access — the single escape hatch for out-of-band
    /// invalidation ([`SweepEngine::invalidate`]); never needed after grid
    /// adaptation (the topology epoch covers that).
    pub fn engine_mut(&mut self) -> &mut SweepEngine<D> {
        &mut self.engine
    }

    /// Rebuild the SFC sweep order if the grid restructured since the
    /// last sweep. The order is a pure work-scheduling permutation: it
    /// never changes which blocks are swept or any per-block arithmetic.
    fn refresh_sweep_order(&mut self, grid: &BlockGrid<D>) {
        if self.sweep_epoch == Some(grid.epoch()) {
            return;
        }
        let walk = CurveWalk::build(grid, self.cfg.partitioner.curve());
        self.sweep_pos =
            walk.entries().iter().enumerate().map(|(pos, e)| (e.id, pos)).collect();
        self.sweep_epoch = Some(grid.epoch());
    }

    /// SFC position of a block in the current sweep order (for tests and
    /// instrumentation; blocks unknown to the cached order sort last).
    pub fn sweep_position(&self, id: BlockId) -> Option<usize> {
        self.sweep_pos.get(&id).copied()
    }

    /// Global CFL dt (parallel reduction over blocks, config's CFL).
    pub fn max_dt(&self, grid: &BlockGrid<D>) -> f64 {
        let m = grid.params().block_dims;
        let ids = grid.block_ids();
        let rate = pool::par_max_f64(&ids, 0.0, |&id| {
            let node = grid.block(id);
            let h = grid.layout().cell_size(node.key().level, m);
            max_rate_block(&self.cfg.physics, node.field(), h)
        });
        if rate > 0.0 {
            self.cfg.cfl / rate
        } else {
            f64::INFINITY
        }
    }

    /// Fill ghosts and evaluate the RHS of every block in parallel.
    fn eval_rhs(&mut self, grid: &mut BlockGrid<D>) {
        grid.ensure_geometry(&self.cfg.geometry);
        self.engine.revalidate(grid);
        self.refresh_sweep_order(grid);
        if self.cfg.comm_overlap {
            self.eval_rhs_overlap(grid);
            return;
        }
        {
            let _span = self.cfg.metrics.span(phase::GHOST_FILL);
            par_fill_ghosts_with(grid, self.engine.plan(), self.engine.config(), &self.cfg.metrics);
        }
        let metrics = self.cfg.metrics.clone();
        let _span = metrics.span(phase::FLUX);
        let m = grid.params().block_dims;
        let layout = grid.layout().clone();
        let phys = &self.cfg.physics;
        let scheme = self.cfg.scheme;
        let ids = grid.block_ids();
        let pos = &self.sweep_pos;
        let sw = self.engine.sweep();
        let rhs_refs = indexed_refs(sw.rhs, &ids);
        let mut work: Vec<_> = ids.iter().copied().zip(rhs_refs).collect();
        // issue in SFC order: spatially adjacent blocks share ghost
        // sources, so contiguous worker chunks reuse cache lines
        work.sort_by_key(|(id, _)| pos.get(id).copied().unwrap_or(usize::MAX));
        let body = |scratch: &mut Vec<f64>, (id, rhs_block): &mut (BlockId, &mut FieldBlock<D>)| {
            let node = grid.block(*id);
            let h = layout.cell_size(node.key().level, m);
            compute_rhs_block(phys, scheme, node.field(), h, rhs_block, scratch);
        };
        if metrics.is_enabled() {
            // timed path: per-worker busy histogram + busy/idle totals
            let t0 = std::time::Instant::now();
            let busy = pool::par_for_each_mut_init_timed(&mut work, Vec::new, body);
            let wall = t0.elapsed().as_nanos() as u64;
            let total_busy: u64 = busy.iter().sum();
            for b in &busy {
                metrics.observe("pool.worker_busy_ns", *b);
            }
            metrics.incr("pool.busy_ns", total_busy);
            metrics
                .incr("pool.idle_ns", (wall * busy.len() as u64).saturating_sub(total_busy));
        } else {
            pool::par_for_each_mut_init(&mut work, Vec::new, body);
        }
    }

    /// Comm/compute-overlap RHS (`SolverConfig::comm_overlap`, the
    /// default): phase 1 of the ghost fill completes as usual, then the
    /// phase-2 (prolongation) scatter runs on a background thread while
    /// the calling thread computes fluxes for every interior block —
    /// those whose ghosts are final after phase 1. Halo blocks (phase-2
    /// destinations) are swept after the join. Bitwise-identical to the
    /// non-overlapped path: the gathered ghost values and the per-block
    /// flux arithmetic are unchanged, only execution order across blocks
    /// differs, and the background scatter writes only halo blocks'
    /// ghosted regions — disjoint from every interior-block read.
    fn eval_rhs_overlap(&mut self, grid: &mut BlockGrid<D>) {
        let metrics = self.cfg.metrics.clone();
        let ghost_span = metrics.span(phase::GHOST_FILL);
        {
            let plan = self.engine.plan();
            let config = self.engine.config();
            fill_phase(grid, plan.phase1(), config, &metrics);
        }
        // phase-2 gather (reads only) and the interior/halo split
        let (by_dst, split) = {
            let plan = self.engine.plan();
            let order = self.engine.config().prolong_order;
            let ready: Vec<(BlockId, ReadyOp<D>)> =
                pool::par_map(plan.phase2(), |t| gather_task(grid, t, order))
                    .into_iter()
                    .flatten()
                    .collect();
            let mut by_dst: HashMap<BlockId, Vec<ReadyOp<D>>> = HashMap::new();
            for (dst, op) in ready {
                by_dst.entry(dst).or_default().push(op);
            }
            (by_dst, self.engine.split_phase2(&grid.block_ids()))
        };
        let m = grid.params().block_dims;
        let layout = grid.layout().clone();
        let phys = &self.cfg.physics;
        let scheme = self.cfg.scheme;
        let ids = grid.block_ids();
        let sw = self.engine.sweep();
        let rhs_refs = indexed_refs(sw.rhs, &ids);
        let mut interior: Vec<(BlockId, &mut BlockNode<D>, &mut FieldBlock<D>)> = Vec::new();
        let mut halo: Vec<(BlockId, &mut BlockNode<D>, &mut FieldBlock<D>)> = Vec::new();
        for ((id, node), rhs) in grid.blocks_mut().zip(rhs_refs) {
            if split.halo.binary_search(&id).is_ok() {
                halo.push((id, node, rhs));
            } else {
                interior.push((id, node, rhs));
            }
        }
        // issue both sweeps in SFC order (same rationale as the
        // non-overlapped path; pure permutation, bitwise-neutral)
        let pos = &self.sweep_pos;
        interior.sort_by_key(|(id, ..)| pos.get(id).copied().unwrap_or(usize::MAX));
        halo.sort_by_key(|(id, ..)| pos.get(id).copied().unwrap_or(usize::MAX));
        let body = &|scratch: &mut Vec<f64>,
                     (_, node, rhs): &mut (BlockId, &mut BlockNode<D>, &mut FieldBlock<D>)| {
            let h = layout.cell_size(node.key().level, m);
            compute_rhs_block(phys, scheme, node.field(), h, rhs, scratch);
        };
        let run_flux = |work: &mut Vec<(BlockId, &mut BlockNode<D>, &mut FieldBlock<D>)>| {
            if metrics.is_enabled() {
                // timed path: per-worker busy histogram + busy/idle totals
                let t0 = std::time::Instant::now();
                let busy = pool::par_for_each_mut_init_timed(work, Vec::new, body);
                let wall = t0.elapsed().as_nanos() as u64;
                let total_busy: u64 = busy.iter().sum();
                for b in &busy {
                    metrics.observe("pool.worker_busy_ns", *b);
                }
                metrics.incr("pool.busy_ns", total_busy);
                metrics
                    .incr("pool.idle_ns", (wall * busy.len() as u64).saturating_sub(total_busy));
            } else {
                pool::par_for_each_mut_init(work, Vec::new, body);
            }
        };
        // background: scatter prolongations into halo blocks; foreground:
        // interior fluxes, overlapping the scatter
        let by_dst = &by_dst;
        let (mut halo, ()) = pool::overlap_join(
            move || {
                for (id, node, _) in halo.iter_mut() {
                    if let Some(ops) = by_dst.get(id) {
                        for op in ops {
                            scatter_op(node.field_mut(), op);
                        }
                    }
                }
                halo
            },
            || {
                let _o = metrics.span(phase::OVERLAP);
                let _f = metrics.span(phase::FLUX);
                run_flux(&mut interior);
            },
        );
        drop(ghost_span);
        // join: halo fluxes once their ghosts are complete
        let _f = metrics.span(phase::FLUX);
        run_flux(&mut halo);
    }

    /// One parallel SSP-RK2 step (Heun), identical arithmetic to the serial
    /// stepper.
    pub fn step_rk2(&mut self, grid: &mut BlockGrid<D>, dt: f64) {
        self.eval_rhs(grid);
        // stage 1: save u^n, write u* = u + dt L(u)
        {
            let _span = self.cfg.metrics.span(phase::UPDATE);
            let phys = &self.cfg.physics;
            let sw = self.engine.sweep();
            let rhs: &[FieldBlock<D>] = sw.rhs;
            let nodes: Vec<_> = grid.blocks_mut().collect();
            let ids: Vec<BlockId> = nodes.iter().map(|(id, _)| *id).collect();
            let stage_refs = indexed_refs(sw.stage, &ids);
            let mut work: Vec<_> = nodes.into_iter().zip(stage_refs).collect();
            pool::par_for_each_mut(&mut work, |((id, node), stage)| {
                rk2_stage1_block(phys, node.field_mut(), &rhs[id.index()], stage, dt);
            });
        }
        // stage 2: u^{n+1} = 1/2 u^n + 1/2 (u* + dt L(u*))
        self.eval_rhs(grid);
        {
            let _span = self.cfg.metrics.span(phase::UPDATE);
            let phys = &self.cfg.physics;
            let sw = self.engine.sweep();
            let rhs: &[FieldBlock<D>] = sw.rhs;
            let stage: &[FieldBlock<D>] = sw.stage;
            let mut nodes: Vec<_> = grid.blocks_mut().collect();
            pool::par_for_each_mut(&mut nodes, |(id, node)| {
                rk2_stage2_block(phys, node.field_mut(), &rhs[id.index()], &stage[id.index()], dt);
            });
        }
    }

    /// Largest stable coarsest-level `dt₀` for subcycling (parallel
    /// per-level reductions; see [`ablock_solver::subcycle::max_dt0`]).
    pub fn max_dt0(&mut self, grid: &BlockGrid<D>) -> f64 {
        let mut sub = std::mem::take(&mut self.sub);
        let dt0 = subcycle::max_dt0(self, grid, &mut sub);
        self.sub = sub;
        dt0
    }

    /// One subcycled hierarchy advance by `dt0`
    /// (see [`ablock_solver::subcycle::step_subcycled`]); level sweeps
    /// and ghost fills run on the pool, with the same per-block
    /// arithmetic as the serial driver.
    pub fn step_subcycled(&mut self, grid: &mut BlockGrid<D>, dt0: f64) {
        grid.ensure_geometry(&self.cfg.geometry);
        let mut sub = std::mem::take(&mut self.sub);
        subcycle::step_subcycled(self, grid, &mut sub, dt0, None);
        self.sub = sub;
    }

    /// Mode-dispatching stable step size (global CFL reduction versus
    /// coarsest-level `dt₀`). Installs the config's immersed geometry
    /// first so the CFL scan sees the same solid mask the step will.
    pub fn stable_dt(&mut self, grid: &mut BlockGrid<D>) -> f64 {
        grid.ensure_geometry(&self.cfg.geometry);
        match self.cfg.time_step_mode {
            TimeStepMode::Global => self.max_dt(grid),
            TimeStepMode::Subcycled => self.max_dt0(grid),
        }
    }

    /// Advance by `dt` honoring [`SolverConfig::time_step_mode`].
    pub fn step(&mut self, grid: &mut BlockGrid<D>, dt: f64) {
        match self.cfg.time_step_mode {
            TimeStepMode::Global => self.step_rk2(grid, dt),
            TimeStepMode::Subcycled => self.step_subcycled(grid, dt),
        }
    }
}

impl<const D: usize, P: Physics> SubcycleBackend<D> for ParStepper<D, P> {
    type Phys = P;

    fn cfg_engine(&mut self) -> (&SolverConfig<P>, &mut SweepEngine<D>) {
        (&self.cfg, &mut self.engine)
    }

    fn level_ids(&self, grid: &BlockGrid<D>, level: u8) -> Vec<BlockId> {
        grid.block_ids()
            .into_iter()
            .filter(|&id| grid.block(id).key().level == level)
            .collect()
    }

    fn fill_level(
        &mut self,
        grid: &mut BlockGrid<D>,
        state: &SubcycleState<D>,
        li: usize,
        theta: f64,
        _bc: Option<&BcFn<D>>,
    ) {
        // Like step_rk2, the pool executor has no custom-bc path; the
        // plan's default boundary synthesis applies.
        let metrics = self.cfg.metrics.clone();
        let config = self.engine.config().clone();
        let _span = metrics.span(phase::GHOST_FILL);
        state.with_lerped_sources(grid, li, theta, |grid, plan| {
            par_fill_ghosts_with(grid, plan, &config, &metrics);
        });
    }

    fn sweep_level(&mut self, grid: &BlockGrid<D>, ids: &[BlockId]) {
        let metrics = self.cfg.metrics.clone();
        let _span = metrics.span(phase::FLUX);
        let m = grid.params().block_dims;
        let layout = grid.layout().clone();
        let phys = &self.cfg.physics;
        let scheme = self.cfg.scheme;
        let sw = self.engine.sweep();
        let rhs_refs = indexed_refs(sw.rhs, ids);
        if self.cfg.refluxing {
            let store_refs = indexed_refs(sw.flux_stores, ids);
            let mut work: Vec<_> =
                ids.iter().copied().zip(rhs_refs.into_iter().zip(store_refs)).collect();
            pool::par_for_each_mut_init(&mut work, Vec::new, |scratch, (id, (rhs, store))| {
                let node = grid.block(*id);
                let h = layout.cell_size(node.key().level, m);
                compute_rhs_block_fluxes(
                    phys,
                    scheme,
                    node.field(),
                    h,
                    rhs,
                    scratch,
                    Some(store),
                );
            });
        } else {
            let mut work: Vec<_> = ids.iter().copied().zip(rhs_refs).collect();
            pool::par_for_each_mut_init(&mut work, Vec::new, |scratch, (id, rhs)| {
                let node = grid.block(*id);
                let h = layout.cell_size(node.key().level, m);
                compute_rhs_block(phys, scheme, node.field(), h, rhs, scratch);
            });
        }
    }

    fn level_rates(&mut self, grid: &BlockGrid<D>, state: &SubcycleState<D>) -> Vec<f64> {
        let m = grid.params().block_dims;
        let mut scanned = 0u64;
        let rates: Vec<f64> = (0..state.levels().len())
            .map(|li| {
                let ids = state.ids(li);
                scanned += ids.len() as u64;
                // f64 max is exact and order-independent: same dt0 as the
                // serial reduction, bit for bit.
                pool::par_max_f64(ids, 0.0, |&id| {
                    let node = grid.block(id);
                    let h = grid.layout().cell_size(node.key().level, m);
                    max_rate_block(&self.cfg.physics, node.field(), h)
                })
            })
            .collect();
        self.engine.note_rate_scans(scanned);
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_solver::euler::Euler;
    use ablock_solver::kernel::Scheme;
    use ablock_solver::problems;
    use ablock_solver::stepper::Stepper;

    fn build() -> (BlockGrid<2>, Euler<2>) {
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([4, 4], 2, 4, 3),
        );
        problems::advected_gaussian(&mut g, &e, [1.0, -0.5], [0.4, 0.6], 0.15);
        (g, e)
    }

    fn collect(g: &BlockGrid<2>) -> Vec<(BlockKey<2>, Vec<f64>)> {
        let mut v: Vec<_> = g
            .blocks()
            .map(|(_, n)| (n.key(), n.field().as_slice().to_vec()))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    #[test]
    fn parallel_matches_serial_uniform() {
        let (mut gs, e) = build();
        let (mut gp, _) = build();
        let mut serial = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
        let mut par = ParStepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        let dt = 1.5e-3;
        for _ in 0..4 {
            serial.step_rk2(&mut gs, dt, None);
            par.step_rk2(&mut gp, dt);
        }
        let a = collect(&gs);
        let b = collect(&gp);
        let shape = gs.params().field_shape();
        for ((ka, fa), (kb, fb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            for c in shape.interior_box().iter() {
                let i = shape.lin(c);
                for v in 0..4 {
                    assert!(
                        (fa[i + v] - fb[i + v]).abs() < 1e-14,
                        "block {ka:?} cell {c:?} var {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_refined() {
        let (mut gs, e) = build();
        let id = gs.find(BlockKey::new(0, [1, 1])).unwrap();
        gs.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        let (mut gp, _) = build();
        let id = gp.find(BlockKey::new(0, [1, 1])).unwrap();
        gp.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();

        let mut serial = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
        let mut par = ParStepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        let dt = 1e-3;
        for _ in 0..3 {
            serial.step_rk2(&mut gs, dt, None);
            par.step_rk2(&mut gp, dt);
        }
        let a = collect(&gs);
        let b = collect(&gp);
        let shape = gs.params().field_shape();
        for ((ka, fa), (kb, fb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            for c in shape.interior_box().iter() {
                let i = shape.lin(c);
                for v in 0..4 {
                    assert!(
                        (fa[i + v] - fb[i + v]).abs() < 1e-13,
                        "block {ka:?} cell {c:?} var {v}: {} vs {}",
                        fa[i + v],
                        fb[i + v]
                    );
                }
            }
        }
    }

    #[test]
    fn max_dt_matches_serial() {
        let (g, e) = build();
        let serial = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
        let par = ParStepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        let a = serial.max_dt(&g);
        let b = par.max_dt(&g);
        assert!((a - b).abs() < 1e-16);
    }

    #[test]
    fn sweep_order_follows_partitioner_curve() {
        let (mut g, e) = build();
        let mut par = ParStepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        par.step_rk2(&mut g, 1e-3);
        let walk = CurveWalk::build(&g, par.config().partitioner.curve());
        for (pos, entry) in walk.entries().iter().enumerate() {
            assert_eq!(par.sweep_position(entry.id), Some(pos), "SFC order mismatch");
        }
        // cached: a refine bumps the epoch and forces a rebuild
        let id = g.block_ids()[0];
        g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        par.step_rk2(&mut g, 1e-3);
        let walk = CurveWalk::build(&g, par.config().partitioner.curve());
        assert_eq!(walk.len(), g.num_blocks());
        for (pos, entry) in walk.entries().iter().enumerate() {
            assert_eq!(par.sweep_position(entry.id), Some(pos), "stale order after adapt");
        }
    }

    #[test]
    fn indexed_refs_disjoint() {
        let mut v = vec![0i32; 10];
        let ids: Vec<BlockId> = {
            // build ids with indices 1, 4, 7 through an arena
            let mut a = ablock_core::arena::Arena::new();
            let all: Vec<BlockId> = (0..8).map(|i| a.insert(i)).collect();
            vec![all[1], all[4], all[7]]
        };
        let refs = indexed_refs(&mut v, &ids);
        assert_eq!(refs.len(), 3);
        for r in refs {
            *r += 1;
        }
        assert_eq!(v, vec![0, 1, 0, 0, 1, 0, 0, 1, 0, 0]);
    }
}

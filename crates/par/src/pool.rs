//! Minimal data-parallel helpers on `std::thread::scope`.
//!
//! The shared-memory executor only needs three shapes of parallelism —
//! an ordered map, a disjoint mutable for-each, and a for-each with
//! per-worker scratch — so a work-stealing pool is overkill. Blocks are
//! homogeneous in cost (same cell count per block), which makes static
//! chunking over `available_parallelism` threads a good schedule.

use std::num::NonZeroUsize;

/// Worker count: `available_parallelism`, clamped to at least 1.
pub fn nthreads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Ordered parallel map: `out[i] = f(&items[i])`.
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    let n = items.len();
    let workers = nthreads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (x, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(x));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("par_map slot filled")).collect()
}

/// Parallel for-each over disjoint mutable items, with one `scratch`
/// value per worker (the `for_each_init` pattern).
pub fn par_for_each_mut_init<T, S, I, F>(items: &mut [T], init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &mut T) + Sync,
{
    let n = items.len();
    let workers = nthreads().min(n);
    if workers <= 1 {
        let mut scratch = init();
        for item in items {
            f(&mut scratch, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        for chunk_items in items.chunks_mut(chunk) {
            scope.spawn(move || {
                let mut scratch = init();
                for item in chunk_items {
                    f(&mut scratch, item);
                }
            });
        }
    });
}

/// Parallel for-each over disjoint mutable items.
pub fn par_for_each_mut<T: Send, F: Fn(&mut T) + Sync>(items: &mut [T], f: F) {
    par_for_each_mut_init(items, || (), |_, item| f(item));
}

/// Like [`par_for_each_mut_init`], but returns each worker's busy time in
/// nanoseconds (time spent inside its chunk loop). Used by instrumented
/// executors to report busy/idle balance; the untimed variants stay on the
/// default path so the null-metrics cost is zero.
pub fn par_for_each_mut_init_timed<T, S, I, F>(items: &mut [T], init: I, f: F) -> Vec<u64>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &mut T) + Sync,
{
    let n = items.len();
    let workers = nthreads().min(n);
    if workers <= 1 {
        let t0 = std::time::Instant::now();
        let mut scratch = init();
        for item in items {
            f(&mut scratch, item);
        }
        return vec![t0.elapsed().as_nanos() as u64];
    }
    let chunk = n.div_ceil(workers);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|chunk_items| {
                scope.spawn(move || {
                    let t0 = std::time::Instant::now();
                    let mut scratch = init();
                    for item in chunk_items {
                        f(&mut scratch, item);
                    }
                    t0.elapsed().as_nanos() as u64
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    })
}

/// Run `bg` on a spawned thread while `fg` runs on the calling thread;
/// return both results once both finish. The comm/compute overlap join
/// point: the executor hands the halo scatter to `bg` and computes
/// interior fluxes in `fg`. `fg` stays on the calling thread on purpose —
/// metrics spans use a thread-agnostic LIFO stack, so only the calling
/// thread may open spans while the pair is in flight.
pub fn overlap_join<RA, RB, FA, FB>(bg: FA, fg: FB) -> (RA, RB)
where
    RA: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB,
{
    std::thread::scope(|scope| {
        let h = scope.spawn(bg);
        let b = fg();
        let a = h.join().expect("overlap background task panicked");
        (a, b)
    })
}

/// Parallel max-reduction of `f` over items (empty input yields `init`).
pub fn par_max_f64<T: Sync, F: Fn(&T) -> f64 + Sync>(items: &[T], init: f64, f: F) -> f64 {
    par_map(items, f).into_iter().fold(init, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_ordered() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys = par_map(&xs, |&x| x * 2);
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut xs = vec![0u64; 777];
        par_for_each_mut(&mut xs, |x| *x += 1);
        assert!(xs.iter().all(|&x| x == 1));
    }

    #[test]
    fn scratch_is_reused_within_worker() {
        let mut xs = vec![0usize; 64];
        par_for_each_mut_init(
            &mut xs,
            Vec::<u8>::new,
            |scratch, x| {
                scratch.push(0);
                *x = scratch.len();
            },
        );
        // every item was visited with a growing per-worker scratch
        assert!(xs.iter().all(|&x| x >= 1));
    }

    #[test]
    fn max_reduction_matches_serial() {
        let xs: Vec<f64> = (0..501).map(|i| (i as f64 * 0.37).sin()).collect();
        let par = par_max_f64(&xs, 0.0, |&x| x);
        let ser = xs.iter().fold(0.0f64, |a, &b| a.max(b));
        assert_eq!(par, ser);
        assert_eq!(par_max_f64(&[] as &[f64], -3.0, |&x| x), -3.0);
    }

    #[test]
    fn overlap_join_returns_both_results() {
        let mut side = 0u32;
        let (a, b) = overlap_join(|| 40 + 2, || {
            side = 7;
            "fg"
        });
        assert_eq!((a, b), (42, "fg"));
        assert_eq!(side, 7);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let ys: Vec<u8> = par_map(&[] as &[u8], |&x| x);
        assert!(ys.is_empty());
        par_for_each_mut(&mut [] as &mut [u8], |_| {});
    }
}

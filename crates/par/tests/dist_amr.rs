//! End-to-end distributed AMR: a blast tracked by a gradient criterion on
//! the message-passing machine, with replicated adapts and SFC
//! rebalancing mid-run, checked bit-for-bit against the serial driver.

use std::collections::HashMap;

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_par::{DistSim, Machine, Partitioner};
use ablock_core::sfc::Curve;
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::problems;
use ablock_solver::SolverConfig;
use ablock_solver::stepper::Stepper;

fn build() -> (BlockGrid<2>, Euler<2>) {
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([4, 4], 2, 4, 2),
    );
    problems::sedov_blast(&mut g, &e, [0.5, 0.5], 0.12, 8.0);
    (g, e)
}

/// Deterministic per-block refine flags from the energy gradient (the
/// criterion used by both serial and distributed runs). Requires filled
/// ghosts.
fn energy_flags(grid: &BlockGrid<2>) -> HashMap<ablock_core::arena::BlockId, Flag> {
    let mut flags = HashMap::new();
    for (id, node) in grid.blocks() {
        if node.key().level >= grid.params().max_level {
            continue;
        }
        let f = node.field();
        let mut worst: f64 = 0.0;
        for c in f.shape().interior_box().iter() {
            for d in 0..2 {
                let mut cp = c;
                cp[d] += 1;
                let mut cm = c;
                cm[d] -= 1;
                worst = worst.max((f.at(cp, 3) - f.at(cm, 3)).abs() / (f.at(c, 3).abs() + 1e-12));
            }
        }
        if worst > 0.25 {
            flags.insert(id, Flag::Refine);
        }
    }
    flags
}

const DT: f64 = 1.0e-3;
const ROUNDS: usize = 3;
const STEPS_PER_ROUND: usize = 2;

/// Serial reference: step, adapt on cadence, step.
fn serial_run() -> (Vec<(BlockKey<2>, Vec<f64>)>, usize) {
    let (mut g, e) = build();
    let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
    for _ in 0..ROUNDS {
        for _ in 0..STEPS_PER_ROUND {
            st.step_rk2(&mut g, DT, None);
        }
        st.fill_ghosts(&mut g, None);
        let flags = energy_flags(&g);
        adapt(&mut g, &flags, Transfer::Conservative(ProlongOrder::LinearMinmod));
    }
    let mut out: Vec<(BlockKey<2>, Vec<f64>)> = g
        .blocks()
        .map(|(_, n)| (n.key(), n.field().as_slice().to_vec()))
        .collect();
    out.sort_by_key(|(k, _)| *k);
    (out, g.num_blocks())
}

#[test]
fn distributed_amr_blast_matches_serial() {
    let (serial, serial_blocks) = serial_run();
    let serial_map: HashMap<BlockKey<2>, Vec<f64>> = serial.into_iter().collect();

    for nranks in [2usize, 3] {
        let results = Machine::run(nranks, |comm| {
            let (g, e) = build();
            let mut sim =
                DistSim::partitioned(g, nranks, SolverConfig::new(e, Scheme::muscl_rusanov()));
            for _ in 0..ROUNDS {
                for _ in 0..STEPS_PER_ROUND {
                    sim.step_rk2(&comm, DT);
                }
                // flags from owned blocks only (ghosts refreshed first)
                sim.halo_exchange(&comm);
                let me = comm.rank();
                let all_flags = energy_flags(&sim.grid);
                let my_flags: HashMap<_, _> = all_flags
                    .into_iter()
                    .filter(|(id, _)| sim.owner[id] == me)
                    .collect();
                sim.adapt_rebalance(&comm, &my_flags);
            }
            ablock_core::verify::check_grid(&sim.grid).unwrap();
            let me = comm.rank();
            // every rank must agree on the topology
            let nb = sim.grid.num_blocks() as f64;
            let nb_max = comm.allreduce_max(nb);
            assert_eq!(nb, nb_max, "ranks disagree on topology");
            sim.owned_ids(me)
                .into_iter()
                .map(|id| {
                    let n = sim.grid.block(id);
                    (n.key(), n.field().as_slice().to_vec())
                })
                .collect::<Vec<_>>()
        }).unwrap();
        let flat: Vec<(BlockKey<2>, Vec<f64>)> = results.into_iter().flatten().collect();
        assert_eq!(
            flat.len(),
            serial_blocks,
            "P={nranks}: ownership must cover each block exactly once"
        );
        let shape = ablock_core::field::FieldShape::<2>::new([4, 4], 2, 4);
        for (key, data) in flat {
            let sref = serial_map
                .get(&key)
                .unwrap_or_else(|| panic!("P={nranks}: topology mismatch at {key:?}"));
            for c in shape.interior_box().iter() {
                let i = shape.lin(c);
                for v in 0..4 {
                    assert!(
                        (data[i + v] - sref[i + v]).abs() < 1e-12,
                        "P={nranks} block {key:?} cell {c:?} var {v}: {} vs {}",
                        data[i + v],
                        sref[i + v]
                    );
                }
            }
        }
    }
}

#[test]
fn distributed_amr_conserves_mass() {
    let totals = Machine::run(2, |comm| {
        let (g, e) = build();
        let total0 = ablock_solver::stepper::total_conserved(&g, 0);
        let mut sim = DistSim::partitioned(
            g,
            2,
            SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_partitioner(Partitioner::sfc(Curve::Morton)),
        );
        for _ in 0..2 {
            for _ in 0..2 {
                let dt = sim.max_dt(&comm);
                sim.step_rk2(&comm, dt);
            }
            sim.halo_exchange(&comm);
            let me = comm.rank();
            let flags: HashMap<_, _> = energy_flags(&sim.grid)
                .into_iter()
                .filter(|(id, _)| sim.owner[id] == me)
                .collect();
            sim.adapt_rebalance(&comm, &flags);
        }
        // owned-mass reduction
        let me = comm.rank();
        let m = sim.grid.params().block_dims;
        let mut local = 0.0;
        for id in sim.owned_ids(me) {
            let n = sim.grid.block(id);
            let h = sim.grid.layout().cell_size(n.key().level, m);
            local += n.field().interior_sum(0) * h[0] * h[1];
        }
        (comm.allreduce_sum(local), total0)
    }).unwrap();
    for (total, total0) in totals {
        // periodic box; only the coarse/fine flux mismatch leaks
        assert!(
            (total - total0).abs() < 5e-4 * total0,
            "mass {total0} -> {total}"
        );
    }
}

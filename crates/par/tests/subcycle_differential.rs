//! Cross-backend differential equivalence for local time stepping
//! (DESIGN.md §17): identical adapt+step schedules driven through the
//! serial [`Stepper`], the shared-memory [`ParStepper`], the distributed
//! [`DistSim`] (Hilbert *and* Morton partitions), and the fault-tolerant
//! [`run_resilient_with`] supervisor — all under
//! `TimeStepMode::Subcycled` with refluxing — must produce
//! **bitwise-identical** final state. A separate suite proves the
//! conservation contract: refluxed subcycled totals track the refluxed
//! global-Δt totals to a few ulps per step on random adapt schedules.

use std::collections::HashMap;

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::verify::check_grid;
use ablock_io::{load_grid, save_grid};
use ablock_par::{
    run_resilient_with, DistSim, FaultPlan, Machine, MachineConfig, ParStepper, Policy,
    RecoverConfig,
};
use ablock_solver::{
    problems, total_conserved, Euler, Geometry, Scheme, SolverConfig, Stepper, TimeStepMode,
};
use ablock_testkit::{cases, flag_for_key, gen_schedule, random_geometry, Schedule};

/// Fixed outer (coarsest-level) step. Stable at every level of the
/// `MAX_LEVEL = 2` hierarchy, and usable by `run_resilient_with`, which
/// takes one dt for the whole run.
const DT: f64 = 1e-3;
const MAX_LEVEL: u8 = 2;
const TRANSFER: Transfer = Transfer::Conservative(ProlongOrder::LinearMinmod);

fn sub_cfg(policy: Policy, geom: &Option<Geometry>) -> SolverConfig<Euler<2>> {
    let mut cfg = SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
        .with_partitioner(policy.partitioner())
        .with_refluxing(true)
        .with_time_step_mode(TimeStepMode::Subcycled);
    if let Some(g) = geom {
        cfg = cfg.with_geometry(g.clone());
    }
    cfg
}

/// The global-Δt reference oracle: same scheme, same refluxing, uniform dt.
fn global_cfg() -> SolverConfig<Euler<2>> {
    SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov()).with_refluxing(true)
}

fn base_grid() -> BlockGrid<2> {
    let layout = RootLayout::unit([2, 2], Boundary::Periodic);
    let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 4, MAX_LEVEL));
    problems::advected_gaussian(&mut g, &Euler::new(1.4), [0.4, 0.3], [0.5, 0.5], 0.2);
    g
}

fn flags_for(
    grid: &BlockGrid<2>,
    seed: u64,
    density: u8,
    only: Option<&[ablock_core::arena::BlockId]>,
) -> HashMap<ablock_core::arena::BlockId, Flag> {
    let pick = |id: ablock_core::arena::BlockId| {
        let key = grid.block(id).key();
        match flag_for_key(seed, key, MAX_LEVEL, density) {
            Flag::Keep => None,
            f => Some((id, f)),
        }
    };
    match only {
        Some(ids) => ids.iter().copied().filter_map(pick).collect(),
        None => grid.block_ids().into_iter().filter_map(pick).collect(),
    }
}

/// Sorted (key, interior bit pattern) signature — the bitwise identity of
/// a grid's state, independent of arena id assignment.
fn signature(grid: &BlockGrid<2>) -> Vec<(BlockKey<2>, Vec<u64>)> {
    let mut v: Vec<(BlockKey<2>, Vec<u64>)> = grid
        .blocks()
        .map(|(_, n)| {
            let f = n.field();
            let mut bits = Vec::new();
            for c in f.shape().interior_box().iter() {
                for var in 0..f.shape().nvar {
                    bits.push(f.at(c, var).to_bits());
                }
            }
            (n.key(), bits)
        })
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

fn assert_bitwise_eq(a: &BlockGrid<2>, b: &BlockGrid<2>, what: &str) {
    let (sa, sb) = (signature(a), signature(b));
    let keys_a: Vec<_> = sa.iter().map(|(k, _)| *k).collect();
    let keys_b: Vec<_> = sb.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys_a, keys_b, "{what}: leaf sets differ");
    for ((k, da), (_, db)) in sa.iter().zip(&sb) {
        for (i, (&x, &y)) in da.iter().zip(db).enumerate() {
            assert!(
                x == y,
                "{what}: block {k:?} word {i}: {:.17e} != {:.17e}",
                f64::from_bits(x),
                f64::from_bits(y)
            );
        }
    }
}

fn adapt_serial(grid: &mut BlockGrid<2>, seed: u64, density: u8) {
    let flags = flags_for(grid, seed, density, None);
    adapt(grid, &flags, TRANSFER);
}

fn checkpoint_cut(grid: &BlockGrid<2>) -> BlockGrid<2> {
    let mut bytes = Vec::new();
    save_grid(&mut bytes, grid).expect("writing to a Vec cannot fail");
    load_grid(&mut bytes.as_slice()).expect("fresh checkpoint must load")
}

/// Serial subcycled reference. Each "step" of the schedule is one full
/// coarsest-level cycle (finer levels substep 2^Δℓ times inside it).
/// Also returns the per-step `stable_dt` trace so distributed runs can
/// be checked for bitwise-equal CFL reductions.
fn run_serial_sub(schedule: &Schedule, geom: &Option<Geometry>) -> (BlockGrid<2>, Vec<u64>) {
    let mut grid = base_grid();
    // install the immersed geometry before the first adapt, matching
    // DistSim (which binarizes masks at construction): the round-0
    // prolongation must already be mask-aware on every backend
    grid.ensure_geometry(geom);
    let mut stepper: Stepper<2, Euler<2>> = Stepper::new(sub_cfg(Policy::SfcHilbert, geom));
    let mut dts = Vec::new();
    for (ri, round) in schedule.rounds.iter().enumerate() {
        adapt_serial(&mut grid, round.flag_seed, round.density);
        for _ in 0..round.steps {
            dts.push(stepper.stable_dt(&mut grid).to_bits());
            stepper.step(&mut grid, DT, None);
        }
        if schedule.checkpoint_after_round == Some(ri) {
            grid = checkpoint_cut(&grid);
            stepper = Stepper::new(sub_cfg(Policy::SfcHilbert, geom));
        }
    }
    check_grid(&grid).unwrap();
    (grid, dts)
}

fn run_shared_sub(schedule: &Schedule, geom: &Option<Geometry>) -> (BlockGrid<2>, Vec<u64>) {
    let mut grid = base_grid();
    grid.ensure_geometry(geom);
    let mut stepper: ParStepper<2, Euler<2>> =
        ParStepper::new(sub_cfg(Policy::SfcHilbert, geom));
    let mut dts = Vec::new();
    for (ri, round) in schedule.rounds.iter().enumerate() {
        adapt_serial(&mut grid, round.flag_seed, round.density);
        for _ in 0..round.steps {
            dts.push(stepper.stable_dt(&mut grid).to_bits());
            stepper.step(&mut grid, DT);
        }
        if schedule.checkpoint_after_round == Some(ri) {
            grid = checkpoint_cut(&grid);
            stepper = ParStepper::new(sub_cfg(Policy::SfcHilbert, geom));
        }
    }
    (grid, dts)
}

/// Distributed subcycled backend under a chosen partition policy. The
/// per-level allreduce in `DistSim::stable_dt` must reproduce the serial
/// CFL trace bitwise (f64 max is exact and order-independent).
fn run_dist_sub(
    schedule: &Schedule,
    nranks: usize,
    policy: Policy,
    geom: &Option<Geometry>,
) -> (BlockGrid<2>, Vec<u64>) {
    let geom = geom.clone();
    let results = Machine::run(nranks, move |comm| {
        let mut sim = DistSim::partitioned(base_grid(), comm.nranks(), sub_cfg(policy, &geom));
        let mut dts = Vec::new();
        for (ri, round) in schedule.rounds.iter().enumerate() {
            let owned = sim.owned_ids(comm.rank());
            let flags = flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
            sim.adapt_rebalance(&comm, &flags);
            for _ in 0..round.steps {
                dts.push(sim.stable_dt(&comm).to_bits());
                sim.advance(&comm, DT);
            }
            if schedule.checkpoint_after_round == Some(ri) {
                sim.gather_full(&comm);
                let loaded = checkpoint_cut(&sim.grid);
                sim = DistSim::partitioned(loaded, comm.nranks(), sub_cfg(policy, &geom));
            }
        }
        sim.gather_full(&comm);
        if comm.rank() == 0 {
            Some((sim.grid, dts))
        } else {
            None
        }
    })
    .expect("fault-free machine run");
    results.into_iter().flatten().next().expect("rank 0 returns state")
}

/// Fault-tolerant backend with the subcycled config: the supervisor's
/// step loop dispatches through `DistSim::advance`, so every step is one
/// subcycled coarsest-level cycle.
fn run_resilient_sub(
    schedule: &Schedule,
    nranks: usize,
    faults: Option<std::sync::Arc<FaultPlan>>,
    geom: &Option<Geometry>,
) -> BlockGrid<2> {
    let rounds = schedule.rounds.clone();
    let round0 = rounds[0];
    let g0 = geom.clone();
    let make_grid = move || {
        let mut g = base_grid();
        g.ensure_geometry(&g0);
        adapt_serial(&mut g, round0.flag_seed, round0.density);
        g
    };
    let mut boundaries: HashMap<usize, usize> = HashMap::new();
    let mut cum = rounds[0].steps as usize;
    for (r, round) in rounds.iter().enumerate().skip(1) {
        boundaries.insert(cum, r);
        cum += round.steps as usize;
    }
    let rcfg = RecoverConfig {
        checkpoint_every: 2,
        machine: MachineConfig::fast(),
        max_restarts: 3,
    };
    let outcome = run_resilient_with(
        nranks,
        cum,
        DT,
        sub_cfg(Policy::SfcHilbert, geom),
        make_grid,
        rcfg,
        faults,
        |sim, comm, done| {
            if let Some(&r) = boundaries.get(&done) {
                let round = rounds[r];
                let owned = sim.owned_ids(comm.rank());
                let flags = flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
                sim.adapt_rebalance(comm, &flags);
            }
        },
    )
    .expect("resilient run must recover");
    outcome.grid
}

/// One schedule through every subcycled backend: bitwise state equality
/// everywhere, bitwise-equal per-step CFL (`stable_dt`) traces where the
/// backend exposes them.
fn subcycled_differential_case(rng: &mut ablock_testkit::Rng, geom: &Option<Geometry>) {
    let schedule = gen_schedule(rng);
    let (serial, dt_serial) = run_serial_sub(&schedule, geom);
    let (shared, dt_shared) = run_shared_sub(&schedule, geom);
    assert_eq!(dt_serial, dt_shared, "stable_dt trace serial vs shared");
    assert_bitwise_eq(&serial, &shared, "subcycled Stepper vs ParStepper");
    for policy in [Policy::SfcHilbert, Policy::SfcMorton] {
        let (dist, dt_dist) = run_dist_sub(&schedule, 2, policy, geom);
        assert_eq!(dt_serial, dt_dist, "stable_dt trace serial vs dist {policy:?}");
        assert_bitwise_eq(&serial, &dist, &format!("subcycled Stepper vs DistSim {policy:?}"));
    }
    let resilient = run_resilient_sub(&schedule, 2, None, geom);
    assert_bitwise_eq(&serial, &resilient, "subcycled Stepper vs run_resilient");
}

#[test]
fn subcycled_differential_batch_a() {
    cases(5, 0x5EED_0060, |_, rng| subcycled_differential_case(rng, &None));
}

#[test]
fn subcycled_differential_batch_b() {
    cases(5, 0x5EED_0061, |_, rng| subcycled_differential_case(rng, &None));
}

#[test]
fn subcycled_differential_batch_c() {
    cases(5, 0x5EED_0062, |_, rng| subcycled_differential_case(rng, &None));
}

/// The masked-geometry axis: a random immersed SDF is installed through
/// `SolverConfig::with_geometry` on every backend. Solid cells freeze,
/// solid faces act as reflective walls, and masks re-binarize
/// deterministically on every rank — so the bitwise equivalence across
/// serial/pool/dist/resilient must be unchanged.
#[test]
fn subcycled_differential_masked_geometry() {
    cases(3, 0x5EED_0065, |_, rng| {
        let geom = Some(random_geometry(rng, 2));
        subcycled_differential_case(rng, &geom);
    });
}

/// Injected faults must not change the subcycled answer: a resilient run
/// that crashes rank 1 mid-schedule and recovers on fewer ranks still
/// matches the serial subcycled reference bitwise.
#[test]
fn subcycled_differential_with_injected_faults() {
    cases(3, 0x5EED_0063, |seed, rng| {
        let schedule = gen_schedule(rng);
        let (serial, _) = run_serial_sub(&schedule, &None);
        let faults = std::sync::Arc::new(FaultPlan::new(seed).crash_rank(1, 30));
        let resilient = run_resilient_sub(&schedule, 2, Some(faults), &None);
        assert_bitwise_eq(&serial, &resilient, "subcycled Stepper vs faulted run_resilient");
    });
}

/// The conservation contract on random adapt schedules: with periodic
/// boundaries and conservative transfers, a refluxed subcycled run and a
/// refluxed global-Δt run both keep every conserved total within ulps of
/// the initial value — so the two totals agree to ulps per step even
/// though the states themselves differ at O(Δt²).
///
/// Key-derived flags depend only on topology, so both runs traverse the
/// *same* grid-hierarchy sequence; only the cell data differs.
#[test]
fn subcycled_totals_match_global_dt_to_ulps() {
    cases(6, 0x5EED_0064, |_, rng| {
        let schedule = gen_schedule(rng);
        let mut g_sub = base_grid();
        let mut g_glob = base_grid();
        let nvar = 4;
        let t0: Vec<f64> = (0..nvar).map(|v| total_conserved(&g_sub, v)).collect();
        let mut st_sub: Stepper<2, Euler<2>> = Stepper::new(sub_cfg(Policy::SfcHilbert, &None));
        let mut st_glob: Stepper<2, Euler<2>> = Stepper::new(global_cfg());
        // one "event" = a step or an adapt round; each adds at most a few
        // ulps of summation noise to a conserved total
        let mut events = 0u64;
        for round in &schedule.rounds {
            adapt_serial(&mut g_sub, round.flag_seed, round.density);
            adapt_serial(&mut g_glob, round.flag_seed, round.density);
            events += 1;
            for _ in 0..round.steps {
                st_sub.step(&mut g_sub, DT, None);
                st_glob.step(&mut g_glob, DT, None);
                events += 1;
                for v in 0..nvar {
                    let a = total_conserved(&g_sub, v);
                    let b = total_conserved(&g_glob, v);
                    let tol = events as f64 * 16.0 * f64::EPSILON * (1.0 + t0[v].abs());
                    assert!(
                        (a - t0[v]).abs() <= tol,
                        "subcycled total of var {v} drifted: {:.17e} -> {a:.17e} after {events} events",
                        t0[v]
                    );
                    assert!(
                        (b - t0[v]).abs() <= tol,
                        "global total of var {v} drifted: {:.17e} -> {b:.17e} after {events} events",
                        t0[v]
                    );
                    assert!(
                        (a - b).abs() <= 2.0 * tol,
                        "subcycled vs global totals of var {v} diverged: {a:.17e} vs {b:.17e}"
                    );
                }
            }
        }
        check_grid(&g_sub).unwrap();
    });
}

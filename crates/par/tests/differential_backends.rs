//! Cross-backend differential equivalence (DESIGN.md §12): identical
//! adapt+step schedules driven through the serial [`Stepper`], the
//! shared-memory [`ParStepper`], the distributed [`DistSim`], and the
//! fault-tolerant [`run_resilient_with`] supervisor must produce
//! **bitwise-identical** final state, and (where the backend exposes a
//! live grid) identical topology-epoch deltas per adapt round.
//!
//! Schedules come from `ablock_testkit::gen_schedule`; adapt flags are
//! *key-derived* ([`flag_for_key`]) so every backend computes the same
//! flag set without coordination. Half the schedules include a
//! mid-schedule checkpoint save→load cut, which must be bitwise-neutral.

use std::collections::HashMap;

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::verify::check_grid;
use ablock_io::{load_grid, save_grid};
use ablock_par::{
    run_resilient_with, DistSim, FaultPlan, Machine, MachineConfig, ParStepper, Policy,
    RecoverConfig,
};
use ablock_solver::{problems, Euler, Scheme, SolverConfig, Stepper};
use ablock_testkit::{cases, flag_for_key, gen_schedule, Schedule};

const DT: f64 = 1e-3;
const MAX_LEVEL: u8 = 2;
const POLICY: Policy = Policy::SfcHilbert;
const TRANSFER: Transfer = Transfer::Conservative(ProlongOrder::LinearMinmod);

fn cfg() -> SolverConfig<Euler<2>> {
    SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
        .with_partitioner(POLICY.partitioner())
}

fn base_grid() -> BlockGrid<2> {
    let layout = RootLayout::unit([2, 2], Boundary::Periodic);
    let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 4, MAX_LEVEL));
    problems::advected_gaussian(&mut g, &Euler::new(1.4), [0.4, 0.3], [0.5, 0.5], 0.2);
    g
}

/// Key-derived flag map for the current leaves (restricted to `only`
/// when a backend owns a subset).
fn flags_for(
    grid: &BlockGrid<2>,
    seed: u64,
    density: u8,
    only: Option<&[ablock_core::arena::BlockId]>,
) -> HashMap<ablock_core::arena::BlockId, Flag> {
    let pick = |id: ablock_core::arena::BlockId| {
        let key = grid.block(id).key();
        match flag_for_key(seed, key, MAX_LEVEL, density) {
            Flag::Keep => None,
            f => Some((id, f)),
        }
    };
    match only {
        Some(ids) => ids.iter().copied().filter_map(pick).collect(),
        None => grid.block_ids().into_iter().filter_map(pick).collect(),
    }
}

/// Sorted (key, interior bit pattern) signature — the bitwise identity of
/// a grid's state, independent of arena id assignment.
fn signature(grid: &BlockGrid<2>) -> Vec<(BlockKey<2>, Vec<u64>)> {
    let mut v: Vec<(BlockKey<2>, Vec<u64>)> = grid
        .blocks()
        .map(|(_, n)| {
            let f = n.field();
            let mut bits = Vec::new();
            for c in f.shape().interior_box().iter() {
                for var in 0..f.shape().nvar {
                    bits.push(f.at(c, var).to_bits());
                }
            }
            (n.key(), bits)
        })
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

fn assert_bitwise_eq(a: &BlockGrid<2>, b: &BlockGrid<2>, what: &str) {
    let (sa, sb) = (signature(a), signature(b));
    let keys_a: Vec<_> = sa.iter().map(|(k, _)| *k).collect();
    let keys_b: Vec<_> = sb.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys_a, keys_b, "{what}: leaf sets differ");
    for ((k, da), (_, db)) in sa.iter().zip(&sb) {
        for (i, (&x, &y)) in da.iter().zip(db).enumerate() {
            assert!(
                x == y,
                "{what}: block {k:?} word {i}: {:.17e} != {:.17e}",
                f64::from_bits(x),
                f64::from_bits(y)
            );
        }
    }
}

/// Apply one adapt round serially; returns the epoch delta.
fn adapt_serial(grid: &mut BlockGrid<2>, seed: u64, density: u8) -> u64 {
    let flags = flags_for(grid, seed, density, None);
    let before = grid.epoch();
    adapt(grid, &flags, TRANSFER);
    grid.epoch() - before
}

fn checkpoint_cut(grid: &BlockGrid<2>) -> BlockGrid<2> {
    let mut bytes = Vec::new();
    save_grid(&mut bytes, grid).expect("writing to a Vec cannot fail");
    load_grid(&mut bytes.as_slice()).expect("fresh checkpoint must load")
}

/// Serial reference: `Stepper` + `balance::adapt`, with a fresh stepper
/// after a checkpoint cut (per-grid plan caches must not carry over).
fn run_serial(schedule: &Schedule) -> (BlockGrid<2>, Vec<u64>) {
    let mut grid = base_grid();
    let mut stepper: Stepper<2, Euler<2>> = Stepper::new(cfg());
    let mut deltas = Vec::new();
    for (ri, round) in schedule.rounds.iter().enumerate() {
        deltas.push(adapt_serial(&mut grid, round.flag_seed, round.density));
        for _ in 0..round.steps {
            stepper.step_rk2(&mut grid, DT, None);
        }
        if schedule.checkpoint_after_round == Some(ri) {
            grid = checkpoint_cut(&grid);
            stepper = Stepper::new(cfg());
        }
    }
    check_grid(&grid).unwrap();
    (grid, deltas)
}

/// Shared-memory backend: same schedule through `ParStepper`.
fn run_shared(schedule: &Schedule) -> (BlockGrid<2>, Vec<u64>) {
    let mut grid = base_grid();
    let mut stepper: ParStepper<2, Euler<2>> = ParStepper::new(cfg());
    let mut deltas = Vec::new();
    for (ri, round) in schedule.rounds.iter().enumerate() {
        deltas.push(adapt_serial(&mut grid, round.flag_seed, round.density));
        for _ in 0..round.steps {
            stepper.step_rk2(&mut grid, DT);
        }
        if schedule.checkpoint_after_round == Some(ri) {
            grid = checkpoint_cut(&grid);
            stepper = ParStepper::new(cfg());
        }
    }
    (grid, deltas)
}

/// Distributed backend: `DistSim` over the in-process machine; each rank
/// contributes key-derived flags for its owned blocks only.
fn run_dist(schedule: &Schedule, nranks: usize) -> (BlockGrid<2>, Vec<u64>) {
    let results = Machine::run(nranks, |comm| {
        let mut sim = DistSim::partitioned(base_grid(), comm.nranks(), cfg());
        let mut deltas = Vec::new();
        for (ri, round) in schedule.rounds.iter().enumerate() {
            let owned = sim.owned_ids(comm.rank());
            let flags =
                flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
            let before = sim.grid.epoch();
            sim.adapt_rebalance(&comm, &flags);
            deltas.push(sim.grid.epoch() - before);
            for _ in 0..round.steps {
                sim.step_rk2(&comm, DT);
            }
            if schedule.checkpoint_after_round == Some(ri) {
                // collective: every rank snapshots the gathered state and
                // re-partitions the reloaded grid identically
                sim.gather_full(&comm);
                let loaded = checkpoint_cut(&sim.grid);
                sim = DistSim::partitioned(loaded, comm.nranks(), cfg());
            }
        }
        sim.gather_full(&comm);
        if comm.rank() == 0 {
            Some((sim.grid, deltas))
        } else {
            None
        }
    })
    .expect("fault-free machine run");
    results.into_iter().flatten().next().expect("rank 0 returns state")
}

/// Fault-tolerant backend: the same schedule expressed through
/// `run_resilient_with`'s `on_step` hook (round 0 folds into `make_grid`;
/// later rounds fire at cumulative step boundaries).
fn run_resilient_backend(
    schedule: &Schedule,
    nranks: usize,
    faults: Option<std::sync::Arc<FaultPlan>>,
) -> BlockGrid<2> {
    let rounds = schedule.rounds.clone();
    let round0 = rounds[0];
    let make_grid = move || {
        let mut g = base_grid();
        adapt_serial(&mut g, round0.flag_seed, round0.density);
        g
    };
    let mut boundaries: HashMap<usize, usize> = HashMap::new();
    let mut cum = rounds[0].steps as usize;
    for (r, round) in rounds.iter().enumerate().skip(1) {
        boundaries.insert(cum, r);
        cum += round.steps as usize;
    }
    let rcfg = RecoverConfig {
        checkpoint_every: 2,
        machine: MachineConfig::fast(),
        max_restarts: 3,
    };
    let outcome = run_resilient_with(
        nranks,
        cum,
        DT,
        cfg(),
        make_grid,
        rcfg,
        faults,
        |sim, comm, done| {
            if let Some(&r) = boundaries.get(&done) {
                let round = rounds[r];
                let owned = sim.owned_ids(comm.rank());
                let flags =
                    flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
                sim.adapt_rebalance(comm, &flags);
            }
        },
    )
    .expect("resilient run must recover");
    outcome.grid
}

/// One schedule through all four backends, asserting bitwise state
/// equality and identical epoch-delta traces.
fn differential_case(rng: &mut ablock_testkit::Rng) {
    let schedule = gen_schedule(rng);
    let (serial, d_serial) = run_serial(&schedule);
    let (shared, d_shared) = run_shared(&schedule);
    assert_eq!(d_serial, d_shared, "epoch deltas serial vs shared");
    assert_bitwise_eq(&serial, &shared, "Stepper vs ParStepper");
    let (dist, d_dist) = run_dist(&schedule, 2);
    // adapt_rebalance ends every round with an incremental rebalance,
    // which bumps the epoch once more *only if blocks actually migrated*
    // (the no-op plan leaves epoch-keyed caches valid) — so each
    // distributed delta is the serial structural delta plus at most one.
    assert_eq!(d_serial.len(), d_dist.len(), "round counts serial vs dist");
    for (i, (&ds, &dd)) in d_serial.iter().zip(&d_dist).enumerate() {
        assert!(
            dd == ds || dd == ds + 1,
            "epoch delta at round {i}: serial {ds} vs dist {dd}"
        );
    }
    assert_bitwise_eq(&serial, &dist, "Stepper vs DistSim");
    let resilient = run_resilient_backend(&schedule, 2, None);
    assert_bitwise_eq(&serial, &resilient, "Stepper vs run_resilient");
}

// The ≥50-schedule budget is split across parallel test binaries' threads;
// every seed namespace is distinct so failures replay in isolation.

#[test]
fn differential_schedules_batch_a() {
    cases(10, 0x5EED_0020, |_, rng| differential_case(rng));
}

#[test]
fn differential_schedules_batch_b() {
    cases(10, 0x5EED_0021, |_, rng| differential_case(rng));
}

#[test]
fn differential_schedules_batch_c() {
    cases(10, 0x5EED_0022, |_, rng| differential_case(rng));
}

#[test]
fn differential_schedules_batch_d() {
    cases(10, 0x5EED_0023, |_, rng| differential_case(rng));
}

#[test]
fn differential_schedules_batch_e() {
    cases(10, 0x5EED_0024, |_, rng| differential_case(rng));
}

/// Injected faults must not change the answer: a resilient run that
/// crashes a rank mid-schedule and recovers on fewer ranks still matches
/// the serial reference bitwise.
#[test]
fn differential_with_injected_faults() {
    cases(4, 0x5EED_0025, |seed, rng| {
        let schedule = gen_schedule(rng);
        let (serial, _) = run_serial(&schedule);
        let faults = std::sync::Arc::new(FaultPlan::new(seed).crash_rank(1, 30));
        let resilient = run_resilient_backend(&schedule, 2, Some(faults));
        assert_bitwise_eq(&serial, &resilient, "Stepper vs faulted run_resilient");
    });
}

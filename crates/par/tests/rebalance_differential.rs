//! Differential proof that the incremental rebalance path is exact
//! (ISSUE 8 / DESIGN.md §16): across random adapt schedules, the
//! ownership `DistSim` reaches through spliced-walk cut-point plans is
//! identical to a from-scratch `Partitioner::partition_grid` of the same
//! grid, the grid passes `check_grid` after every plan application, and
//! the field state stays bitwise-identical to the serial stepper —
//! overlap on and off, Hilbert and Morton, and under a non-uniform
//! measured-cost weight hook.

use std::collections::HashMap;
use std::sync::Arc;

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::sfc::Curve;
use ablock_core::verify::check_grid;
use ablock_par::{DistSim, Machine, Partitioner, WeightFn};
use ablock_solver::{problems, Euler, Geometry, Scheme, SolverConfig, Stepper};
use ablock_testkit::{cases, flag_for_key, gen_schedule, random_geometry, Schedule};

const DT: f64 = 1e-3;
const MAX_LEVEL: u8 = 2;
const TRANSFER: Transfer = Transfer::Conservative(ProlongOrder::LinearMinmod);

fn cfg(geom: &Option<Geometry>) -> SolverConfig<Euler<2>> {
    let mut c = SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov());
    if let Some(g) = geom {
        c = c.with_geometry(g.clone());
    }
    c
}

fn base_grid() -> BlockGrid<2> {
    let layout = RootLayout::unit([2, 2], Boundary::Periodic);
    let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 4, MAX_LEVEL));
    problems::advected_gaussian(&mut g, &Euler::new(1.4), [0.4, 0.3], [0.5, 0.5], 0.2);
    g
}

fn flags_for(
    grid: &BlockGrid<2>,
    seed: u64,
    density: u8,
    only: Option<&[ablock_core::arena::BlockId]>,
) -> HashMap<ablock_core::arena::BlockId, Flag> {
    let pick = |id: ablock_core::arena::BlockId| {
        let key = grid.block(id).key();
        match flag_for_key(seed, key, MAX_LEVEL, density) {
            Flag::Keep => None,
            f => Some((id, f)),
        }
    };
    match only {
        Some(ids) => ids.iter().copied().filter_map(pick).collect(),
        None => grid.block_ids().into_iter().filter_map(pick).collect(),
    }
}

/// Sorted (key, interior bit pattern) signature — bitwise identity of a
/// grid's state, independent of arena id assignment.
fn signature(grid: &BlockGrid<2>) -> Vec<(BlockKey<2>, Vec<u64>)> {
    let mut v: Vec<(BlockKey<2>, Vec<u64>)> = grid
        .blocks()
        .map(|(_, n)| {
            let f = n.field();
            let mut bits = Vec::new();
            for c in f.shape().interior_box().iter() {
                for var in 0..f.shape().nvar {
                    bits.push(f.at(c, var).to_bits());
                }
            }
            (n.key(), bits)
        })
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

fn assert_bitwise_eq(a: &BlockGrid<2>, b: &BlockGrid<2>, what: &str) {
    let (sa, sb) = (signature(a), signature(b));
    let keys_a: Vec<_> = sa.iter().map(|(k, _)| *k).collect();
    let keys_b: Vec<_> = sb.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys_a, keys_b, "{what}: leaf sets differ");
    for ((k, da), (_, db)) in sa.iter().zip(&sb) {
        for (i, (&x, &y)) in da.iter().zip(db).enumerate() {
            assert!(
                x == y,
                "{what}: block {k:?} word {i}: {:.17e} != {:.17e}",
                f64::from_bits(x),
                f64::from_bits(y)
            );
        }
    }
}

fn run_serial(schedule: &Schedule, geom: &Option<Geometry>) -> BlockGrid<2> {
    let mut grid = base_grid();
    // masks must exist before the round-0 adapt on every backend
    // (DistSim binarizes them at construction)
    grid.ensure_geometry(geom);
    let mut stepper: Stepper<2, Euler<2>> = Stepper::new(cfg(geom));
    for round in &schedule.rounds {
        let flags = flags_for(&grid, round.flag_seed, round.density, None);
        adapt(&mut grid, &flags, TRANSFER);
        for _ in 0..round.steps {
            stepper.step_rk2(&mut grid, DT, None);
        }
    }
    check_grid(&grid).unwrap();
    grid
}

/// Distributed run driving the incremental rebalance; after every plan
/// application, assert the ownership oracle (incremental == from-scratch
/// `partition_grid`) and re-verify the grid from scratch.
fn run_dist(
    schedule: &Schedule,
    nranks: usize,
    part: &Partitioner,
    overlap: bool,
    weight_fn: Option<WeightFn<2>>,
    check_owner: bool,
    geom: &Option<Geometry>,
) -> BlockGrid<2> {
    let results = Machine::run(nranks, |comm| {
        let mut sim = DistSim::partitioned(
            base_grid(),
            comm.nranks(),
            cfg(geom).with_comm_overlap(overlap).with_partitioner(part.clone()),
        );
        if let Some(w) = &weight_fn {
            sim.set_weight_fn(w.clone());
        }
        for (r, round) in schedule.rounds.iter().enumerate() {
            let owned = sim.owned_ids(comm.rank());
            let flags = flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
            sim.adapt_rebalance(&comm, &flags);
            check_grid(&sim.grid).unwrap_or_else(|e| {
                panic!("round {r} rank {}: invalid grid after plan: {e}", comm.rank())
            });
            if check_owner {
                // the incremental cut-point plan must land exactly where a
                // from-scratch partition of the post-adapt grid lands
                let scratch = part.partition_grid(&sim.grid, comm.nranks());
                assert_eq!(
                    sim.owner.len(),
                    scratch.len(),
                    "round {r} rank {}: owner map size",
                    comm.rank()
                );
                for (id, rank) in &scratch {
                    assert_eq!(
                        sim.owner.get(id),
                        Some(rank),
                        "round {r} rank {}: block {:?} owner diverged from from-scratch",
                        comm.rank(),
                        sim.grid.block(*id).key()
                    );
                }
            }
            for _ in 0..round.steps {
                sim.step_rk2(&comm, DT);
            }
        }
        sim.gather_full(&comm);
        if comm.rank() == 0 {
            Some(sim.grid)
        } else {
            None
        }
    })
    .expect("fault-free machine run");
    results.into_iter().flatten().next().expect("rank 0 returns state")
}

/// Random adapt schedules: incremental ownership == from-scratch
/// partition after every plan, bitwise state == serial, overlap on/off.
#[test]
fn incremental_rebalance_matches_from_scratch_and_serial() {
    cases(4, 0x5EED_0060, |_, rng| {
        let schedule = gen_schedule(rng);
        let serial = run_serial(&schedule, &None);
        let part = Partitioner::default();
        for overlap in [true, false] {
            let dist = run_dist(&schedule, 3, &part, overlap, None, true, &None);
            assert_bitwise_eq(&serial, &dist, &format!("serial vs dist overlap={overlap}"));
        }
    });
}

/// The ownership oracle holds on the Morton curve too (different splice
/// geometry, same cut-point algebra).
#[test]
fn incremental_rebalance_exact_on_morton() {
    cases(3, 0x5EED_0061, |_, rng| {
        let schedule = gen_schedule(rng);
        let serial = run_serial(&schedule, &None);
        let part = Partitioner::sfc(Curve::Morton);
        let dist = run_dist(&schedule, 2, &part, true, None, true, &None);
        assert_bitwise_eq(&serial, &dist, "serial vs dist (Morton)");
    });
}

/// A non-uniform measured-cost weight hook (deterministic per key, so
/// replicated plans still agree) moves the cuts but never the physics:
/// state stays bitwise-identical to serial.
#[test]
fn measured_weight_hook_keeps_state_bitwise() {
    cases(3, 0x5EED_0062, |_, rng| {
        let schedule = gen_schedule(rng);
        let serial = run_serial(&schedule, &None);
        let weights: WeightFn<2> = Arc::new(|grid, id| {
            let key = grid.block(id).key();
            // key-derived, rank-independent pseudo-cost in [1, 8)
            let h = (key.coords[0] as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(key.coords[1] as u64)
                .wrapping_add(key.level as u64);
            1.0 + (h % 7) as f64
        });
        let part = Partitioner::default();
        // ownership diverges from the uniform-weight from-scratch oracle
        // by design; the invariant under test is bitwise state safety
        let dist = run_dist(&schedule, 3, &part, true, Some(weights), false, &None);
        assert_bitwise_eq(&serial, &dist, "serial vs dist (weight hook)");
    });
}

/// The masked-geometry axis: migrated blocks carry only the `nvar` field
/// planes — solid masks never travel, each rank re-binarizes them from
/// the replicated geometry. The incremental-vs-from-scratch ownership
/// oracle and the bitwise serial equality must both survive masked
/// worlds.
#[test]
fn incremental_rebalance_masked_geometry() {
    cases(3, 0x5EED_0063, |_, rng| {
        let geom = Some(random_geometry(rng, 2));
        let schedule = gen_schedule(rng);
        let serial = run_serial(&schedule, &geom);
        let part = Partitioner::default();
        let dist = run_dist(&schedule, 3, &part, true, None, true, &geom);
        assert_bitwise_eq(&serial, &dist, "serial vs dist (masked geometry)");
    });
}

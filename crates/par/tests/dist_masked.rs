//! Feature-interaction coverage: the distributed machine running on a
//! masked (non-Cartesian) root layout — the combination a real
//! flow-around-a-body production run needs.

use std::collections::HashMap;

use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_par::{DistSim, Machine, Partitioner};
use ablock_core::sfc::Curve;
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::problems;
use ablock_solver::stepper::Stepper;
use ablock_solver::SolverConfig;

fn build() -> (BlockGrid<2>, Euler<2>) {
    let e = Euler::<2>::new(1.4);
    // 4x4 lattice with a 2x1 solid bite, reflecting walls
    let layout = RootLayout::unit([4, 4], Boundary::Outflow)
        .with_mask(|c| !((1..3).contains(&c[0]) && c[1] == 1))
        .with_hole_boundary(Boundary::Reflect);
    let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 4, 1));
    problems::advected_gaussian(&mut g, &e, [0.5, 0.5], [0.5, 0.8], 0.15);
    (g, e)
}

#[test]
fn distributed_masked_grid_matches_serial() {
    let dt = 1.5e-3;
    let steps = 4;
    let (mut gs, e) = build();
    assert_eq!(gs.num_blocks(), 14, "two roots are masked out");
    let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
    for _ in 0..steps {
        st.step_rk2(&mut gs, dt, None);
    }
    let serial: HashMap<BlockKey<2>, Vec<f64>> = gs
        .blocks()
        .map(|(_, n)| (n.key(), n.field().as_slice().to_vec()))
        .collect();

    let results = Machine::run(3, move |comm| {
        let (g, e) = build();
        let mut sim = DistSim::partitioned(g, 3, SolverConfig::new(e, Scheme::muscl_rusanov()));
        for _ in 0..steps {
            sim.step_rk2(&comm, dt);
        }
        sim.owned_ids(comm.rank())
            .into_iter()
            .map(|id| {
                let n = sim.grid.block(id);
                (n.key(), n.field().as_slice().to_vec())
            })
            .collect::<Vec<_>>()
    }).unwrap();
    let shape = gs.params().field_shape();
    let mut checked = 0;
    for (key, data) in results.into_iter().flatten() {
        let sref = &serial[&key];
        for c in shape.interior_box().iter() {
            let i = shape.lin(c);
            for v in 0..4 {
                assert!(
                    (data[i + v] - sref[i + v]).abs() < 1e-13,
                    "block {key:?} cell {c:?} var {v}"
                );
            }
        }
        checked += 1;
    }
    assert_eq!(checked, 14);
}

#[test]
fn masked_grid_walls_reflect_momentum_distributed() {
    // a pulse moving straight at the solid bite bounces: total vertical
    // momentum reverses sign over time instead of escaping through it
    Machine::run(2, |comm| {
        let e = Euler::<2>::new(1.4);
        let layout = RootLayout::unit([2, 2], Boundary::Reflect)
            .with_mask(|c| c != [1, 1])
            .with_hole_boundary(Boundary::Reflect);
        let mut g = BlockGrid::new(layout, GridParams::new([8, 8], 2, 4, 1));
        // gas moving toward the hole (up-right)
        problems::set_initial(&mut g, &e, |_, w| {
            w[0] = 1.0;
            w[1] = 0.4;
            w[2] = 0.4;
            w[3] = 1.0;
        });
        let mut sim = DistSim::partitioned(
            g,
            2,
            SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_partitioner(Partitioner::sfc(Curve::Morton)),
        );
        for _ in 0..40 {
            let dt = sim.max_dt(&comm);
            sim.step_rk2(&comm, dt);
        }
        let me = comm.rank();
        let mut mass = 0.0;
        for id in sim.owned_ids(me) {
            let n = sim.grid.block(id);
            mass += n.field().interior_sum(0);
            for c in n.field().shape().interior_box().iter() {
                assert!(n.field().cell(c).iter().all(|x| x.is_finite()));
                assert!(n.field().at(c, 0) > 0.0);
            }
        }
        // fully closed box (walls + solid bite): mass exactly conserved
        let total = comm.allreduce_sum(mass);
        let expected = 3.0 * 64.0; // 3 blocks x 64 cells x rho 1 initially
        assert!(
            (total - expected).abs() < 1e-9 * expected,
            "closed-box mass {total} vs {expected}"
        );
    }).unwrap();
}

//! End-to-end fault tolerance: a seeded crash kills a rank mid-run, the
//! supervisor restarts from the last checkpoint on the survivors, and the
//! final state matches the fault-free run.
//!
//! The recovery guarantee under test (see `ablock_par::recover`): with a
//! fixed `dt` and seeded everything, recomputing the steps since the last
//! checkpoint is deterministic, so an injected-fault run must end with
//! `check_grid` passing and fields equal to the fault-free run to
//! roundoff. The default tests are the quick reduced mode; the full
//! crash-site x rank sweep runs with `--ignored`.

use std::sync::Arc;

use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_par::{
    run_resilient, FaultPlan, Machine, MachineConfig, RankFailure, RecoverConfig,
};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::problems;
use ablock_solver::SolverConfig;

const DT: f64 = 1.0e-3;
const STEPS: usize = 8;

fn make_grid() -> BlockGrid<2> {
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([4, 4], 2, 4, 1),
    );
    problems::advected_gaussian(&mut g, &e, [0.6, -0.3], [0.5, 0.5], 0.15);
    g
}

fn recover_cfg() -> RecoverConfig {
    RecoverConfig {
        checkpoint_every: 2,
        machine: MachineConfig::fast(),
        max_restarts: 3,
    }
}

fn run(nranks: usize, faults: Option<Arc<FaultPlan>>) -> ablock_par::RecoverOutcome<2> {
    run_resilient(
        nranks,
        STEPS,
        DT,
        SolverConfig::new(Euler::<2>::new(1.4), Scheme::muscl_rusanov()),
        make_grid,
        recover_cfg(),
        faults,
    )
    .expect("resilient run must complete")
}

/// Assert two grids share topology and agree on every interior cell.
fn assert_grids_match(a: &BlockGrid<2>, b: &BlockGrid<2>, what: &str) {
    assert_eq!(a.num_blocks(), b.num_blocks(), "{what}: block counts differ");
    for (_, node) in a.blocks() {
        let id_b = b
            .find(node.key())
            .unwrap_or_else(|| panic!("{what}: {:?} missing from reference", node.key()));
        let fb = b.block(id_b).field();
        for c in node.field().shape().interior_box().iter() {
            for v in 0..a.params().nvar {
                let (x, y) = (node.field().at(c, v), fb.at(c, v));
                assert!(
                    (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                    "{what}: block {:?} cell {c:?} var {v}: {x} vs {y}",
                    node.key()
                );
            }
        }
    }
}

#[test]
fn crash_mid_run_recovers_and_matches_fault_free() {
    let nranks = 3;
    let fault_free = run(nranks, None);
    assert_eq!(fault_free.restarts, 0, "control run must not restart");
    assert_eq!(fault_free.final_nranks, nranks);
    ablock_core::verify::check_grid(&fault_free.grid).unwrap();

    // kill rank 1 at its 30th communication op: mid-run, after the first
    // checkpoint (each RK2 step costs well over a dozen ops per rank)
    let plan = Arc::new(FaultPlan::new(0xFA17_0001).crash_rank(1, 30));
    let outcome = run(nranks, Some(plan));
    assert!(outcome.restarts >= 1, "the injected crash must trigger a restart");
    assert_eq!(outcome.final_nranks, nranks - 1, "graceful degradation to survivors");
    assert!(
        outcome
            .failures
            .iter()
            .any(|f| matches!(f.failure, RankFailure::InjectedCrash) && f.rank == 1),
        "root cause must name the crashed rank: {:?}",
        outcome.failures
    );
    ablock_core::verify::check_grid(&outcome.grid).unwrap();
    assert_grids_match(&outcome.grid, &fault_free.grid, "crash-recovery");
}

#[test]
fn crash_with_message_faults_still_converges() {
    // crash + lossy transport in one plan: drops, duplicates and bit flips
    // ride on the reliable transport while the crash forces a recovery
    let nranks = 3;
    let fault_free = run(nranks, None);
    let plan = Arc::new(
        FaultPlan::new(0xFA17_0002)
            .drop_messages(0.02)
            .duplicate_messages(0.02)
            .corrupt_messages(0.02)
            .crash_rank(2, 40),
    );
    let outcome = run(nranks, Some(plan.clone()));
    assert!(outcome.restarts >= 1);
    assert_eq!(outcome.final_nranks, nranks - 1);
    ablock_core::verify::check_grid(&outcome.grid).unwrap();
    assert_grids_match(&outcome.grid, &fault_free.grid, "crash+faults");
    let stats = plan.stats();
    assert!(
        stats.dropped + stats.duplicated + stats.corrupted > 0,
        "the plan must actually have injected message faults: {stats:?}"
    );
}

#[test]
fn panicking_rank_is_reported_not_hung() {
    // Acceptance check on the machine layer itself: a panicking rank turns
    // into Err(MachineError) naming it, within the watchdog timeout.
    let start = std::time::Instant::now();
    let err = Machine::run_with(MachineConfig::fast(), None, 3, |comm| {
        if comm.rank() == 1 {
            panic!("rank 1 dies");
        }
        comm.barrier();
    })
    .unwrap_err();
    assert_eq!(err.rank, 1);
    assert!(
        matches!(&err.failure, RankFailure::Panic(m) if m.contains("rank 1 dies")),
        "{err}"
    );
    assert!(
        start.elapsed() < MachineConfig::fast().watchdog * 10,
        "failure detection took {:?}", start.elapsed()
    );
}

/// The delta-proportionality acceptance check: recovering from one crashed
/// rank moves only that rank's blocks over the wire. Survivors restore
/// their own blocks from their slot stores (zero traffic), the dead
/// rank's blocks are re-dealt and fetched from its ring buddy — and
/// nothing ever needs the durable-store slow path, because the buddy
/// replica set is complete.
#[test]
fn peer_recovery_transfers_only_lost_blocks() {
    let nranks = 3;
    let fault_free = run(nranks, None);
    let plan = Arc::new(FaultPlan::new(0xFA17_0003).crash_rank(1, 30));
    let outcome = run(nranks, Some(plan));
    assert_eq!(outcome.restarts, 1);
    assert_eq!(outcome.recoveries.len(), 1, "one restart, one recovery report");
    let rec = &outcome.recoveries[0];
    let total = rec.total_blocks;
    assert!(total > 0, "the snapshot resumed from must hold the whole grid");
    // every block was restored, each exactly once, by local + peer alone
    assert_eq!(
        rec.nodes_local + rec.nodes_peer,
        total,
        "local + peer must cover the grid: {rec:?}"
    );
    assert_eq!(rec.nodes_store, 0, "buddy replicas make the durable store unnecessary");
    assert_eq!(rec.fetch_timeouts, 0, "{rec:?}");
    assert_eq!(rec.hash_mismatches, 0, "{rec:?}");
    // traffic is proportional to the *lost* share, not the grid: the dead
    // rank owned ~1/3 of the blocks and its buddy rehosts about half of
    // those locally, so well under a third of the grid moves
    assert!(rec.nodes_peer > 0, "re-dealt blocks must come from peers: {rec:?}");
    assert!(
        rec.nodes_peer <= total.div_ceil(3),
        "peer traffic must scale with the dead rank's share: {rec:?}"
    );
    // live counters measure payload: exactly one block's values per fetch
    let g = make_grid();
    let per_leaf =
        g.params().block_dims.iter().product::<i64>() as usize * g.params().nvar;
    assert_eq!(rec.peer_values, rec.nodes_peer * per_leaf as u64, "{rec:?}");
    // the snapshot ledger must account for every checkpoint and for the
    // buddy replicas that made the zero-store recovery possible (this
    // scenario advects through every block, so no dedup is expected here;
    // the dedup ratio is asserted in `obl_ckpt_delta` and the io tests)
    assert!(outcome.snapshots.snapshots >= 3, "{:?}", outcome.snapshots);
    assert!(outcome.snapshots.replica_nodes > 0, "{:?}", outcome.snapshots);
    assert_grids_match(&outcome.grid, &fault_free.grid, "peer-recovery");
}

/// A second fault in the middle of recovery: the rank serving the fetches
/// dies on the first restart attempt, that attempt is detected and
/// abandoned, and the second restart (down to one rank, durable-store
/// fallback for everything it never owned) still converges bitwise.
#[test]
fn crash_during_recovery_still_converges() {
    let nranks = 3;
    let fault_free = run(nranks, None);
    let plan = Arc::new(
        FaultPlan::new(0xFA17_0004)
            .crash_rank(1, 30) // first fault, mid-run on attempt 0
            .crash_rank_on_attempt(0, 5, 1), // second fault, during recovery
    );
    let outcome = run(nranks, Some(plan));
    assert_eq!(outcome.restarts, 2, "both injected crashes must trigger restarts");
    assert_eq!(outcome.final_nranks, 1, "graceful degradation to the last rank");
    assert_eq!(outcome.recoveries.len(), 2);
    // the final recovery ran solo: no peers left, so the re-dealt blocks
    // of both dead slots came from the durable store
    let last = &outcome.recoveries[1];
    assert_eq!(last.nodes_local + last.nodes_peer + last.nodes_store, last.total_blocks);
    assert_eq!(last.nodes_peer, 0, "a lone survivor has no peers: {last:?}");
    assert!(last.nodes_store > 0, "dead slots' blocks must come from storage: {last:?}");
    ablock_core::verify::check_grid(&outcome.grid).unwrap();
    assert_grids_match(&outcome.grid, &fault_free.grid, "crash-during-recovery");
}

/// Full sweep: every rank, several crash sites, on 2 and 3 ranks. Slow —
/// run with `cargo test -p ablock-par --test fault_tolerance -- --ignored`.
#[test]
#[ignore = "full crash-site sweep; the quick reduced mode runs by default"]
fn crash_sweep_all_ranks_and_sites() {
    for nranks in [2usize, 3] {
        let fault_free = run(nranks, None);
        for rank in 0..nranks {
            // sites span launch, mid-run and late-run; the incremental
            // checkpoints keep whole runs under ~50 ops/rank on 2 ranks,
            // so "late" is op 40, not 120
            for at_op in [5u64, 20, 40] {
                let seed = 0xFA17_5EED ^ (nranks as u64) << 16 ^ (rank as u64) << 8 ^ at_op;
                let plan = Arc::new(FaultPlan::new(seed).crash_rank(rank, at_op));
                let outcome = run(nranks, Some(plan));
                assert!(
                    outcome.restarts >= 1,
                    "P={nranks} rank={rank} op={at_op}: crash did not fire"
                );
                assert_eq!(outcome.final_nranks, nranks - 1);
                ablock_core::verify::check_grid(&outcome.grid).unwrap();
                assert_grids_match(
                    &outcome.grid,
                    &fault_free.grid,
                    &format!("sweep P={nranks} rank={rank} op={at_op}"),
                );
            }
        }
    }
}

//! Observability over the parallel substrates: the virtual-clock cost
//! model must replay to byte-identical metrics, and the machine's
//! per-rank comm counters must see real traffic.

use std::collections::HashMap;

use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_obs::{phase, Metrics};
use ablock_par::{
    model_step_cached, record_adapt_phases, record_step_phases, CostParams,
    Machine, Policy,
};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::SolverConfig;

/// One modeled 8-rank run on a fresh virtual-clock registry.
fn modeled_run(steps: usize) -> String {
    const NRANKS: usize = 8;
    let metrics = Metrics::with_virtual_clock();
    let grid = BlockGrid::<3>::new(
        RootLayout::unit([4, 2, 2], Boundary::Periodic),
        GridParams::new([4, 4, 4], 2, 1, 1),
    );
    let owner: HashMap<_, _> = Policy::SfcHilbert.partitioner().partition_grid(&grid, NRANKS);
    let params = CostParams::t3d_like(2.0e-6, 16.0, 4.0, 8.0);
    let mut engine = SolverConfig::new(Euler::<3>::new(1.4), Scheme::muscl_rusanov())
        .with_metrics(metrics.clone())
        .engine();
    for step in 0..steps {
        let cost = model_step_cached(&grid, &mut engine, &owner, NRANKS, &params);
        record_step_phases(&metrics, &cost, &params);
        if (step + 1) % 2 == 0 {
            let migrated = cost.ranks[0].cells * params.nvar * 0.05;
            record_adapt_phases(&metrics, NRANKS, migrated, &params);
        }
    }
    metrics.snapshot().to_json()
}

#[test]
fn cost_model_metrics_replay_byte_identical() {
    let a = modeled_run(6);
    let b = modeled_run(6);
    assert_eq!(a, b, "two identical cost-model runs must serialize identically");
    // and the replay actually recorded the phase structure
    for ph in [
        phase::GHOST_FILL,
        phase::FLUX,
        phase::UPDATE,
        phase::COMM,
        phase::REDUCE,
        phase::ADAPT,
        phase::REBALANCE,
    ] {
        assert!(a.contains(&format!("\"{ph}\"")) || a.contains(&format!("/{ph}\"")), "missing {ph}");
    }
}

#[test]
fn machine_records_per_rank_comm_traffic() {
    const NRANKS: usize = 3;
    let snaps = Machine::run(NRANKS, |comm| {
        let metrics = Metrics::recording();
        comm.install_metrics(&metrics);
        // point-to-point traffic in a ring + a collective
        let next = (comm.rank() + 1) % NRANKS;
        let prev = (comm.rank() + NRANKS - 1) % NRANKS;
        comm.send(next, 7, vec![comm.rank() as f64; 16]);
        let data = comm.recv(prev, 7);
        assert_eq!(data.len(), 16);
        let total = comm.allreduce_sum(1.0);
        assert_eq!(total, NRANKS as f64);
        comm.barrier();
        metrics.snapshot()
    })
    .unwrap();

    for (rank, snap) in snaps.iter().enumerate() {
        let sent = snap.counter(&format!("comm.r{rank}.sent_msgs"));
        let recvd = snap.counter(&format!("comm.r{rank}.recv_msgs"));
        let sent_values = snap.counter(&format!("comm.r{rank}.sent_values"));
        assert!(sent >= 1, "rank {rank} sent nothing: {sent}");
        assert!(recvd >= 1, "rank {rank} received nothing: {recvd}");
        assert!(sent_values >= 16, "rank {rank} undercounted values: {sent_values}");
        // keys are rank-qualified: no rank sees another rank's counters
        for other in 0..NRANKS {
            if other != rank {
                assert_eq!(snap.counter(&format!("comm.r{other}.sent_msgs")), 0);
            }
        }
    }
}

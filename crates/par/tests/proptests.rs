//! Property tests for the parallel substrates: partition invariants under
//! arbitrary weights and rank counts, cost-model sanity, machine
//! collectives against scalar oracles.
//!
//! Cases are generated with the in-repo [`ablock_testkit`] seeded driver;
//! a failing case reports its seed so it can be replayed exactly.

use ablock_core::key::BlockKey;
use ablock_par::{imbalance, Machine, Policy};
use ablock_testkit::cases;

fn keys_2d(n: i64) -> Vec<BlockKey<2>> {
    (0..n)
        .flat_map(|x| (0..n).map(move |y| BlockKey::new(1, [x, y])))
        .collect()
}

/// Every policy produces a valid assignment: in-range ranks, every
/// block assigned, and (for nranks <= blocks with uniform weights)
/// no empty rank for the SFC policies.
#[test]
fn partitions_are_valid() {
    cases(24, 0xBA1A_0001, |_, rng| {
        let n = rng.i64_in(2, 8);
        let nranks = rng.usize_in(1, 12);
        let heavy = rng.coin();
        let keys = keys_2d(n);
        let mut weights = vec![1.0; keys.len()];
        if heavy {
            weights[0] = 10.0;
        }
        for policy in [Policy::SfcMorton, Policy::SfcHilbert, Policy::RoundRobin, Policy::Greedy] {
            let a = policy.partitioner().assign_keys(&keys, &weights, nranks);
            assert_eq!(a.len(), keys.len());
            assert!(a.iter().all(|&r| r < nranks), "{policy:?}");
            if nranks <= keys.len() && !heavy {
                let mut used = vec![false; nranks];
                for &r in &a {
                    used[r] = true;
                }
                assert!(used.iter().all(|&u| u), "{policy:?} left a rank empty");
            }
        }
    });
}

/// Imbalance is always >= 1, and greedy (longest-processing-time)
/// satisfies the classic LPT guarantee: max load <= 4/3 of the
/// optimal lower bound max(mean, heaviest block).
#[test]
fn greedy_meets_lpt_bound() {
    cases(24, 0xBA1A_0002, |_, rng| {
        let n = rng.i64_in(2, 7);
        let nranks = rng.usize_in(2, 8);
        let seed = rng.next_u64();
        let keys = keys_2d(n);
        let mut state = seed | 1;
        let weights: Vec<f64> = keys
            .iter()
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                1.0 + ((state >> 33) % 100) as f64 / 25.0
            })
            .collect();
        let g = Policy::Greedy.partitioner().assign_keys(&keys, &weights, nranks);
        let ig = imbalance(&weights, &g, nranks);
        assert!(ig >= 1.0 - 1e-12);
        let total: f64 = weights.iter().sum();
        let mean = total / nranks as f64;
        let wmax = weights.iter().cloned().fold(0.0, f64::max);
        let opt_lb = mean.max(wmax);
        let mut load = vec![0.0f64; nranks];
        for (w, &r) in weights.iter().zip(&g) {
            load[r] += w;
        }
        let max_load = load.iter().cloned().fold(0.0, f64::max);
        assert!(
            max_load <= 4.0 / 3.0 * opt_lb + 1e-9,
            "LPT bound violated: {max_load} > 4/3 * {opt_lb}"
        );
    });
}

/// SFC chunks are contiguous along the curve for any weights.
#[test]
fn sfc_chunks_contiguous() {
    cases(24, 0xBA1A_0003, |_, rng| {
        use ablock_core::sfc::{curve_index, required_bits, Curve};
        let n = rng.i64_in(2, 7);
        let nranks = rng.usize_in(1, 10);
        let seed = rng.next_u64();
        let keys = keys_2d(n);
        let mut state = seed | 1;
        let weights: Vec<f64> = keys
            .iter()
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                0.5 + ((state >> 33) % 10) as f64
            })
            .collect();
        let a = Policy::SfcMorton.partitioner().assign_keys(&keys, &weights, nranks);
        let bits = required_bits(n, 1);
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| curve_index(&keys[i], 1, bits, Curve::Morton));
        let ranks: Vec<usize> = order.iter().map(|&i| a[i]).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
    });
}

/// Machine collectives equal their scalar oracles for any rank count.
#[test]
fn collectives_match_oracles() {
    cases(12, 0xBA1A_0004, |_, rng| {
        let nranks = rng.usize_in(1, 9);
        let base = rng.i64_in(-100, 100);
        let outs = Machine::run(nranks, move |c| {
            let x = (base + c.rank() as i64) as f64;
            (c.allreduce_sum(x), c.allreduce_min(x), c.allreduce_max(x))
        })
        .unwrap();
        let xs: Vec<f64> = (0..nranks).map(|r| (base + r as i64) as f64).collect();
        let sum: f64 = xs.iter().sum();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (s, lo, hi) in outs {
            assert!((s - sum).abs() < 1e-9);
            assert_eq!(lo, min);
            assert_eq!(hi, max);
        }
    });
}

/// allgatherv reassembles every rank's payload everywhere.
#[test]
fn allgatherv_is_complete() {
    cases(12, 0xBA1A_0005, |_, rng| {
        let nranks = rng.usize_in(1, 7);
        let lens: Vec<usize> = (0..8).map(|_| rng.usize_below(5)).collect();
        let lens = std::sync::Arc::new(lens);
        let l2 = lens.clone();
        let outs = Machine::run(nranks, move |c| {
            let n = l2[c.rank() % l2.len()];
            let mine: Vec<f64> = (0..n).map(|i| (c.rank() * 100 + i) as f64).collect();
            c.allgatherv(mine)
        })
        .unwrap();
        for parts in outs {
            assert_eq!(parts.len(), nranks);
            for (r, part) in parts.iter().enumerate() {
                let n = lens[r % lens.len()];
                assert_eq!(part.len(), n);
                for (i, &v) in part.iter().enumerate() {
                    assert_eq!(v, (r * 100 + i) as f64);
                }
            }
        }
    });
}

//! Property tests for the parallel substrates: partition invariants under
//! arbitrary weights and rank counts, cost-model sanity, machine
//! collectives against scalar oracles.

use ablock_core::key::BlockKey;
use ablock_par::{imbalance, partition, Machine, Policy};
use proptest::prelude::*;

fn keys_2d(n: i64) -> Vec<BlockKey<2>> {
    (0..n)
        .flat_map(|x| (0..n).map(move |y| BlockKey::new(1, [x, y])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy produces a valid assignment: in-range ranks, every
    /// block assigned, and (for nranks <= blocks with uniform weights)
    /// no empty rank for the SFC policies.
    #[test]
    fn partitions_are_valid(
        n in 2i64..8,
        nranks in 1usize..12,
        heavy in any::<bool>(),
    ) {
        let keys = keys_2d(n);
        let mut weights = vec![1.0; keys.len()];
        if heavy {
            weights[0] = 10.0;
        }
        for policy in [Policy::SfcMorton, Policy::SfcHilbert, Policy::RoundRobin, Policy::Greedy] {
            let a = partition(&keys, &weights, nranks, policy);
            prop_assert_eq!(a.len(), keys.len());
            prop_assert!(a.iter().all(|&r| r < nranks), "{:?}", policy);
            if nranks <= keys.len() && !heavy {
                let mut used = vec![false; nranks];
                for &r in &a {
                    used[r] = true;
                }
                prop_assert!(used.iter().all(|&u| u), "{:?} left a rank empty", policy);
            }
        }
    }

    /// Imbalance is always >= 1, and greedy (longest-processing-time)
    /// satisfies the classic LPT guarantee: max load <= 4/3 of the
    /// optimal lower bound max(mean, heaviest block).
    #[test]
    fn greedy_meets_lpt_bound(
        n in 2i64..7,
        nranks in 2usize..8,
        seed in any::<u64>(),
    ) {
        let keys = keys_2d(n);
        let mut state = seed | 1;
        let weights: Vec<f64> = keys
            .iter()
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                1.0 + ((state >> 33) % 100) as f64 / 25.0
            })
            .collect();
        let g = partition(&keys, &weights, nranks, Policy::Greedy);
        let ig = imbalance(&weights, &g, nranks);
        prop_assert!(ig >= 1.0 - 1e-12);
        let total: f64 = weights.iter().sum();
        let mean = total / nranks as f64;
        let wmax = weights.iter().cloned().fold(0.0, f64::max);
        let opt_lb = mean.max(wmax);
        let mut load = vec![0.0f64; nranks];
        for (w, &r) in weights.iter().zip(&g) {
            load[r] += w;
        }
        let max_load = load.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            max_load <= 4.0 / 3.0 * opt_lb + 1e-9,
            "LPT bound violated: {max_load} > 4/3 * {opt_lb}"
        );
    }

    /// SFC chunks are contiguous along the curve for any weights.
    #[test]
    fn sfc_chunks_contiguous(
        n in 2i64..7,
        nranks in 1usize..10,
        seed in any::<u64>(),
    ) {
        use ablock_core::sfc::{curve_index, required_bits, Curve};
        let keys = keys_2d(n);
        let mut state = seed | 1;
        let weights: Vec<f64> = keys
            .iter()
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                0.5 + ((state >> 33) % 10) as f64
            })
            .collect();
        let a = partition(&keys, &weights, nranks, Policy::SfcMorton);
        let bits = required_bits(n, 1);
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| curve_index(&keys[i], 1, bits, Curve::Morton));
        let ranks: Vec<usize> = order.iter().map(|&i| a[i]).collect();
        prop_assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
    }

    /// Machine collectives equal their scalar oracles for any rank count.
    #[test]
    fn collectives_match_oracles(nranks in 1usize..9, base in -100i64..100) {
        let outs = Machine::run(nranks, |c| {
            let x = (base + c.rank() as i64) as f64;
            (c.allreduce_sum(x), c.allreduce_min(x), c.allreduce_max(x))
        });
        let xs: Vec<f64> = (0..nranks).map(|r| (base + r as i64) as f64).collect();
        let sum: f64 = xs.iter().sum();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (s, lo, hi) in outs {
            prop_assert!((s - sum).abs() < 1e-9);
            prop_assert_eq!(lo, min);
            prop_assert_eq!(hi, max);
        }
    }

    /// allgatherv reassembles every rank's payload everywhere.
    #[test]
    fn allgatherv_is_complete(nranks in 1usize..7, lens in prop::collection::vec(0usize..5, 8)) {
        let lens = std::sync::Arc::new(lens);
        let l2 = lens.clone();
        let outs = Machine::run(nranks, move |c| {
            let n = l2[c.rank() % l2.len()];
            let mine: Vec<f64> = (0..n).map(|i| (c.rank() * 100 + i) as f64).collect();
            c.allgatherv(mine)
        });
        for parts in outs {
            prop_assert_eq!(parts.len(), nranks);
            for (r, part) in parts.iter().enumerate() {
                let n = lens[r % lens.len()];
                prop_assert_eq!(part.len(), n);
                for (i, &v) in part.iter().enumerate() {
                    prop_assert_eq!(v, (r * 100 + i) as f64);
                }
            }
        }
    }
}

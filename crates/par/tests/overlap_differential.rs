//! Differential proof that comm/compute overlap is bitwise-safe
//! (DESIGN.md §13): identical adapt+step schedules through the serial
//! [`Stepper`], [`ParStepper`] and [`DistSim`] with `comm_overlap` on
//! *and* off — plus a fault-injected `run_resilient_with` run under
//! overlap — must all produce bitwise-identical state and matching
//! topology-epoch deltas. A separate test pins the aggregation message
//! invariant: one message per active rank pair per exchange phase.

use std::collections::HashMap;

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::verify::check_grid;
use ablock_obs::Metrics;
use ablock_par::{
    run_resilient_with, DistSim, FaultPlan, Machine, MachineConfig, ParStepper, Policy,
    RecoverConfig,
};
use ablock_solver::{problems, Euler, Geometry, Scheme, SolverConfig, Stepper, TimeStepMode};
use ablock_testkit::{cases, flag_for_key, gen_schedule, random_geometry, Schedule};

const DT: f64 = 1e-3;
const MAX_LEVEL: u8 = 2;
const POLICY: Policy = Policy::SfcHilbert;
const TRANSFER: Transfer = Transfer::Conservative(ProlongOrder::LinearMinmod);

fn cfg(overlap: bool, geom: &Option<Geometry>) -> SolverConfig<Euler<2>> {
    let mut c = SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
        .with_comm_overlap(overlap)
        .with_partitioner(POLICY.partitioner());
    if let Some(g) = geom {
        c = c.with_geometry(g.clone());
    }
    c
}

/// Subcycled variant: refluxing + local time stepping on top of the
/// overlap knob under test.
fn sub_cfg(overlap: bool) -> SolverConfig<Euler<2>> {
    cfg(overlap, &None)
        .with_refluxing(true)
        .with_time_step_mode(TimeStepMode::Subcycled)
}

fn base_grid() -> BlockGrid<2> {
    let layout = RootLayout::unit([2, 2], Boundary::Periodic);
    let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 4, MAX_LEVEL));
    problems::advected_gaussian(&mut g, &Euler::new(1.4), [0.4, 0.3], [0.5, 0.5], 0.2);
    g
}

fn flags_for(
    grid: &BlockGrid<2>,
    seed: u64,
    density: u8,
    only: Option<&[ablock_core::arena::BlockId]>,
) -> HashMap<ablock_core::arena::BlockId, Flag> {
    let pick = |id: ablock_core::arena::BlockId| {
        let key = grid.block(id).key();
        match flag_for_key(seed, key, MAX_LEVEL, density) {
            Flag::Keep => None,
            f => Some((id, f)),
        }
    };
    match only {
        Some(ids) => ids.iter().copied().filter_map(pick).collect(),
        None => grid.block_ids().into_iter().filter_map(pick).collect(),
    }
}

/// Sorted (key, interior bit pattern) signature — the bitwise identity of
/// a grid's state, independent of arena id assignment.
fn signature(grid: &BlockGrid<2>) -> Vec<(BlockKey<2>, Vec<u64>)> {
    let mut v: Vec<(BlockKey<2>, Vec<u64>)> = grid
        .blocks()
        .map(|(_, n)| {
            let f = n.field();
            let mut bits = Vec::new();
            for c in f.shape().interior_box().iter() {
                for var in 0..f.shape().nvar {
                    bits.push(f.at(c, var).to_bits());
                }
            }
            (n.key(), bits)
        })
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

fn assert_bitwise_eq(a: &BlockGrid<2>, b: &BlockGrid<2>, what: &str) {
    let (sa, sb) = (signature(a), signature(b));
    let keys_a: Vec<_> = sa.iter().map(|(k, _)| *k).collect();
    let keys_b: Vec<_> = sb.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys_a, keys_b, "{what}: leaf sets differ");
    for ((k, da), (_, db)) in sa.iter().zip(&sb) {
        for (i, (&x, &y)) in da.iter().zip(db).enumerate() {
            assert!(
                x == y,
                "{what}: block {k:?} word {i}: {:.17e} != {:.17e}",
                f64::from_bits(x),
                f64::from_bits(y)
            );
        }
    }
}

fn adapt_serial(grid: &mut BlockGrid<2>, seed: u64, density: u8) -> u64 {
    let flags = flags_for(grid, seed, density, None);
    let before = grid.epoch();
    adapt(grid, &flags, TRANSFER);
    grid.epoch() - before
}

/// Serial reference (`comm_overlap` has no serial meaning; the `Stepper`
/// ignores it by construction).
fn run_serial(schedule: &Schedule, geom: &Option<Geometry>) -> (BlockGrid<2>, Vec<u64>) {
    let mut grid = base_grid();
    // masks must exist before the round-0 adapt on every backend
    // (DistSim binarizes them at construction)
    grid.ensure_geometry(geom);
    let mut stepper: Stepper<2, Euler<2>> = Stepper::new(cfg(true, geom));
    let mut deltas = Vec::new();
    for round in &schedule.rounds {
        deltas.push(adapt_serial(&mut grid, round.flag_seed, round.density));
        for _ in 0..round.steps {
            stepper.step_rk2(&mut grid, DT, None);
        }
    }
    check_grid(&grid).unwrap();
    (grid, deltas)
}

fn run_shared(
    schedule: &Schedule,
    overlap: bool,
    geom: &Option<Geometry>,
) -> (BlockGrid<2>, Vec<u64>) {
    let mut grid = base_grid();
    grid.ensure_geometry(geom);
    let mut stepper: ParStepper<2, Euler<2>> = ParStepper::new(cfg(overlap, geom));
    let mut deltas = Vec::new();
    for round in &schedule.rounds {
        deltas.push(adapt_serial(&mut grid, round.flag_seed, round.density));
        for _ in 0..round.steps {
            stepper.step_rk2(&mut grid, DT);
        }
    }
    (grid, deltas)
}

fn run_dist(
    schedule: &Schedule,
    nranks: usize,
    overlap: bool,
    geom: &Option<Geometry>,
) -> (BlockGrid<2>, Vec<u64>) {
    let results = Machine::run(nranks, |comm| {
        let mut sim = DistSim::partitioned(base_grid(), comm.nranks(), cfg(overlap, geom));
        let mut deltas = Vec::new();
        for round in &schedule.rounds {
            let owned = sim.owned_ids(comm.rank());
            let flags = flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
            let before = sim.grid.epoch();
            sim.adapt_rebalance(&comm, &flags);
            deltas.push(sim.grid.epoch() - before);
            for _ in 0..round.steps {
                sim.step_rk2(&comm, DT);
            }
        }
        sim.gather_full(&comm);
        if comm.rank() == 0 {
            Some((sim.grid, deltas))
        } else {
            None
        }
    })
    .expect("fault-free machine run");
    results.into_iter().flatten().next().expect("rank 0 returns state")
}

/// Fault-tolerant backend under a given overlap setting (mirrors the
/// schedule translation in `differential_backends.rs`).
fn run_resilient_backend(
    schedule: &Schedule,
    nranks: usize,
    faults: Option<std::sync::Arc<FaultPlan>>,
    overlap: bool,
    geom: &Option<Geometry>,
) -> BlockGrid<2> {
    let rounds = schedule.rounds.clone();
    let round0 = rounds[0];
    let g0 = geom.clone();
    let make_grid = move || {
        let mut g = base_grid();
        g.ensure_geometry(&g0);
        adapt_serial(&mut g, round0.flag_seed, round0.density);
        g
    };
    let mut boundaries: HashMap<usize, usize> = HashMap::new();
    let mut cum = rounds[0].steps as usize;
    for (r, round) in rounds.iter().enumerate().skip(1) {
        boundaries.insert(cum, r);
        cum += round.steps as usize;
    }
    let rcfg = RecoverConfig {
        checkpoint_every: 2,
        machine: MachineConfig::fast(),
        max_restarts: 3,
    };
    let outcome = run_resilient_with(
        nranks,
        cum,
        DT,
        cfg(overlap, geom),
        make_grid,
        rcfg,
        faults,
        |sim, comm, done| {
            if let Some(&r) = boundaries.get(&done) {
                let round = rounds[r];
                let owned = sim.owned_ids(comm.rank());
                let flags = flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
                sim.adapt_rebalance(comm, &flags);
            }
        },
    )
    .expect("resilient run must recover");
    outcome.grid
}

/// Shared-memory overlap: on and off both match the serial stepper
/// bitwise, with identical epoch-delta traces.
#[test]
fn shared_overlap_on_off_matches_serial() {
    cases(6, 0x5EED_0050, |_, rng| {
        let schedule = gen_schedule(rng);
        let (serial, d_serial) = run_serial(&schedule, &None);
        for overlap in [true, false] {
            let (shared, d_shared) = run_shared(&schedule, overlap, &None);
            assert_eq!(d_serial, d_shared, "epoch deltas serial vs shared overlap={overlap}");
            assert_bitwise_eq(&serial, &shared, &format!("Stepper vs ParStepper overlap={overlap}"));
        }
    });
}

/// Distributed overlap: the aggregated+overlapped exchange and the legacy
/// per-task exchange both match the serial stepper bitwise; structural
/// epoch deltas match serial, with at most one extra bump per round when
/// the incremental rebalance actually migrates blocks.
#[test]
fn dist_overlap_on_off_matches_serial() {
    cases(4, 0x5EED_0051, |_, rng| {
        let schedule = gen_schedule(rng);
        let (serial, d_serial) = run_serial(&schedule, &None);
        for overlap in [true, false] {
            let (dist, d_dist) = run_dist(&schedule, 2, overlap, &None);
            assert_eq!(d_serial.len(), d_dist.len(), "round counts overlap={overlap}");
            for (i, (&ds, &dd)) in d_serial.iter().zip(&d_dist).enumerate() {
                assert!(
                    dd == ds || dd == ds + 1,
                    "epoch delta round {i} overlap={overlap}: serial {ds} vs dist {dd}"
                );
            }
            assert_bitwise_eq(&serial, &dist, &format!("Stepper vs DistSim overlap={overlap}"));
        }
    });
}

/// The masked-geometry axis: a random immersed SDF rides the same
/// schedules. Wall fluxes, frozen solid cells, and mask-aware
/// prolongation are all rank-local and deterministic, so flipping
/// `comm_overlap` (and distributing across ranks, and crashing a rank)
/// must stay bitwise-invisible on masked worlds too.
#[test]
fn overlap_on_off_matches_serial_masked_geometry() {
    cases(3, 0x5EED_0054, |_, rng| {
        let geom = Some(random_geometry(rng, 2));
        let schedule = gen_schedule(rng);
        let (serial, d_serial) = run_serial(&schedule, &geom);
        for overlap in [true, false] {
            let (shared, d_shared) = run_shared(&schedule, overlap, &geom);
            assert_eq!(d_serial, d_shared, "masked epoch deltas serial vs shared overlap={overlap}");
            assert_bitwise_eq(
                &serial,
                &shared,
                &format!("masked Stepper vs ParStepper overlap={overlap}"),
            );
            let (dist, d_dist) = run_dist(&schedule, 2, overlap, &geom);
            for (i, (&ds, &dd)) in d_serial.iter().zip(&d_dist).enumerate() {
                assert!(
                    dd == ds || dd == ds + 1,
                    "masked epoch delta round {i} overlap={overlap}: serial {ds} vs dist {dd}"
                );
            }
            assert_bitwise_eq(
                &serial,
                &dist,
                &format!("masked Stepper vs DistSim overlap={overlap}"),
            );
        }
        let resilient = run_resilient_backend(&schedule, 2, None, true, &geom);
        assert_bitwise_eq(&serial, &resilient, "masked Stepper vs resilient overlap=on");
    });
}

/// A resilient run that crashes rank 1 mid-schedule and recovers on fewer
/// ranks, with overlap on, still matches the serial reference bitwise.
#[test]
fn resilient_crash_under_overlap_matches_serial() {
    cases(3, 0x5EED_0052, |seed, rng| {
        let schedule = gen_schedule(rng);
        let (serial, _) = run_serial(&schedule, &None);
        let faults = std::sync::Arc::new(FaultPlan::new(seed).crash_rank(1, 30));
        let resilient = run_resilient_backend(&schedule, 2, Some(faults), true, &None);
        assert_bitwise_eq(&serial, &resilient, "Stepper vs faulted resilient overlap=on");
    });
}

/// The aggregation invariant, asserted against live comm counters: with
/// overlap on, every exchange moves exactly one message per active rank
/// pair per phase (`comm.agg.messages` == plan-derived pair count ==
/// `comm.agg.pair_msgs_expected`), and the aggregated path moves at
/// least 25% fewer halo messages than the legacy per-task exchange.
#[test]
fn aggregated_messages_equal_active_pairs() {
    const NRANKS: usize = 3;
    const STEPS: usize = 3;
    let run = |overlap: bool| {
        Machine::run(NRANKS, move |comm| {
            let metrics = Metrics::recording();
            let mut sim = DistSim::partitioned(
                base_grid(),
                comm.nranks(),
                cfg(overlap, &None).with_metrics(metrics.clone()),
            );
            // one adapt round so prolongation (phase-2) traffic exists
            let owned = sim.owned_ids(comm.rank());
            let flags = flags_for(&sim.grid, 0xA11CE, 60, Some(&owned));
            sim.adapt_rebalance(&comm, &flags);
            for _ in 0..STEPS {
                sim.step_rk2(&comm, DT);
            }
            // independently derive the active-pair count from the plan
            let mut owner: HashMap<ablock_core::arena::BlockId, usize> = HashMap::new();
            for r in 0..comm.nranks() {
                for id in sim.owned_ids(r) {
                    owner.insert(id, r);
                }
            }
            let pairs = sim.engine().plan().aggregate(&sim.grid, &|id| owner[&id]).num_messages();
            (metrics.snapshot(), pairs)
        })
        .expect("fault-free machine run")
    };

    let on = run(true);
    let pairs = on[0].1;
    assert!(pairs > 0, "test topology must have cross-rank traffic");
    assert!(on.iter().all(|(_, p)| *p == pairs), "replicated plans disagree on pair count");
    let sum = |snaps: &[(ablock_obs::MetricsSnapshot, usize)], key: &str| -> u64 {
        snaps.iter().map(|(s, _)| s.counter(key)).sum()
    };
    // RK2 = two ghost exchanges per step
    let exchanges = (2 * STEPS) as u64;
    let agg_msgs = sum(&on, "comm.agg.messages");
    assert_eq!(
        agg_msgs,
        exchanges * pairs as u64,
        "aggregated path must move exactly one message per active rank pair per phase"
    );
    assert_eq!(
        agg_msgs,
        sum(&on, "comm.agg.pair_msgs_expected"),
        "sent messages must match the plan-derived expectation"
    );
    assert_eq!(sum(&on, "comm.halo.messages"), 0, "overlap run must not use the legacy path");

    let off = run(false);
    let halo_msgs = sum(&off, "comm.halo.messages");
    assert_eq!(sum(&off, "comm.agg.messages"), 0, "legacy run must not use the aggregated path");
    assert!(
        4 * agg_msgs <= 3 * halo_msgs,
        "aggregation must cut halo messages by >= 25%: {agg_msgs} vs {halo_msgs}"
    );
    // both paths deliver the same payload volume to ghost cells
    assert_eq!(
        sum(&on, "dist.halo_values_recv"),
        sum(&off, "dist.halo_values_recv"),
        "aggregated and legacy paths must move identical halo volumes"
    );
}

/// Subcycled local time stepping under both overlap settings (DESIGN.md
/// §17): the per-sublevel ghost fills always ride the aggregated
/// exchange, so flipping `comm_overlap` must not perturb a subcycled run
/// — shared and distributed backends match the serial subcycled stepper
/// bitwise either way.
#[test]
fn subcycled_overlap_on_off_matches_serial() {
    cases(4, 0x5EED_0053, |_, rng| {
        let schedule = gen_schedule(rng);
        // serial subcycled reference
        let mut serial = base_grid();
        let mut st: Stepper<2, Euler<2>> = Stepper::new(sub_cfg(true));
        for round in &schedule.rounds {
            adapt_serial(&mut serial, round.flag_seed, round.density);
            for _ in 0..round.steps {
                st.step(&mut serial, DT, None);
            }
        }
        check_grid(&serial).unwrap();
        for overlap in [true, false] {
            let mut shared = base_grid();
            let mut ps: ParStepper<2, Euler<2>> = ParStepper::new(sub_cfg(overlap));
            for round in &schedule.rounds {
                adapt_serial(&mut shared, round.flag_seed, round.density);
                for _ in 0..round.steps {
                    ps.step(&mut shared, DT);
                }
            }
            assert_bitwise_eq(
                &serial,
                &shared,
                &format!("subcycled Stepper vs ParStepper overlap={overlap}"),
            );
            let results = Machine::run(2, |comm| {
                let mut sim = DistSim::partitioned(base_grid(), comm.nranks(), sub_cfg(overlap));
                for round in &schedule.rounds {
                    let owned = sim.owned_ids(comm.rank());
                    let flags = flags_for(&sim.grid, round.flag_seed, round.density, Some(&owned));
                    sim.adapt_rebalance(&comm, &flags);
                    for _ in 0..round.steps {
                        sim.advance(&comm, DT);
                    }
                }
                sim.gather_full(&comm);
                (comm.rank() == 0).then_some(sim.grid)
            })
            .expect("fault-free machine run");
            let dist = results.into_iter().flatten().next().expect("rank 0 returns state");
            assert_bitwise_eq(
                &serial,
                &dist,
                &format!("subcycled Stepper vs DistSim overlap={overlap}"),
            );
        }
    });
}

//! Scheme-quality comparisons: the knobs the paper's "options within the
//! field of adaptive mesh refinement" paragraph leaves open, measured.
//!
//! * HLL resolves contacts no worse than Rusanov at equal cost class;
//! * sharper limiters (MC) beat minmod on smooth profiles;
//! * first-order vs MUSCL on the Sod problem;
//! * Powell source on/off: ∇·B growth in a 2-D MHD problem.

use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::mhd::IdealMhd;
use ablock_solver::problems;
use ablock_solver::recon::{Limiter, Recon};
use ablock_solver::stepper::Stepper;
use ablock_solver::SolverConfig;
use ablock_solver::Riemann;

fn sod_l1_error(scheme: Scheme) -> f64 {
    // against a fine-grid reference profile computed with the same scheme
    // family's converged result? Simpler: against a very fine MUSCL run.
    let run = |nblocks: i64, scheme: Scheme| -> Vec<(f64, f64)> {
        let e = Euler::<1>::new(1.4);
        let mut g = BlockGrid::<1>::new(
            RootLayout::unit([nblocks], Boundary::Outflow),
            GridParams::new([8], 2, 3, 0),
        );
        problems::sod(&mut g, &e, 0.5);
        let mut st = Stepper::new(SolverConfig::new(e, scheme));
        st.run_until(&mut g, 0.0, 0.2, None);
        let m = g.params().block_dims;
        let layout = g.layout().clone();
        let mut prof = Vec::new();
        for (_, node) in g.blocks() {
            for c in node.field().shape().interior_box().iter() {
                let x = layout.cell_center(node.key(), m, c)[0];
                prof.push((x, node.field().at(c, 0)));
            }
        }
        prof.sort_by(|a, b| a.0.total_cmp(&b.0));
        prof
    };
    let reference = run(128, Scheme::muscl_rusanov()); // 1024 cells
    let coarse = run(16, scheme); // 128 cells
    // L1 against the reference sampled at the coarse centers (8:1 ratio)
    let mut l1 = 0.0;
    for (i, (_, rho)) in coarse.iter().enumerate() {
        // each coarse cell covers 8 reference cells; compare to their mean
        let lo = i * 8;
        let mean: f64 = reference[lo..lo + 8].iter().map(|p| p.1).sum::<f64>() / 8.0;
        l1 += (rho - mean).abs();
    }
    l1 / coarse.len() as f64
}

#[test]
fn muscl_beats_first_order_on_sod() {
    let fo = sod_l1_error(Scheme::first_order());
    let muscl = sod_l1_error(Scheme::muscl_rusanov());
    assert!(
        muscl < 0.6 * fo,
        "MUSCL ({muscl}) must clearly beat first order ({fo})"
    );
}

#[test]
fn hll_not_worse_than_rusanov_on_sod() {
    let rus = sod_l1_error(Scheme {
        recon: Recon::Muscl(Limiter::Minmod),
        riemann: Riemann::Rusanov,
    });
    let hll = sod_l1_error(Scheme {
        recon: Recon::Muscl(Limiter::Minmod),
        riemann: Riemann::Hll,
    });
    assert!(hll <= rus * 1.05, "HLL {hll} vs Rusanov {rus}");
}

#[test]
fn limiter_ordering_on_smooth_advection() {
    // smooth pulse advected one period: MC < minmod in L1 (sharper slopes)
    let l1 = |lim: Limiter| -> f64 {
        let e = Euler::<1>::new(1.4);
        let mut g = BlockGrid::<1>::new(
            RootLayout::unit([8], Boundary::Periodic),
            GridParams::new([16], 2, 3, 0),
        );
        problems::set_initial(&mut g, &e, |x, w| {
            w[0] = 1.0 + 0.3 * (-((x[0] - 0.5) / 0.12).powi(2)).exp();
            w[1] = 1.0;
            w[2] = 1.0;
        });
        let mut st = Stepper::new(SolverConfig::new(
            e,
            Scheme { recon: Recon::Muscl(lim), riemann: Riemann::Rusanov },
        ));
        st.run_until(&mut g, 0.0, 1.0, None);
        let m = g.params().block_dims;
        let layout = g.layout().clone();
        let mut err = 0.0;
        let mut n = 0;
        for (_, node) in g.blocks() {
            for c in node.field().shape().interior_box().iter() {
                let x = layout.cell_center(node.key(), m, c)[0];
                let exact = 1.0 + 0.3 * (-((x - 0.5) / 0.12).powi(2)).exp();
                err += (node.field().at(c, 0) - exact).abs();
                n += 1;
            }
        }
        err / n as f64
    };
    let minmod = l1(Limiter::Minmod);
    let mc = l1(Limiter::MonotonizedCentral);
    let vl = l1(Limiter::VanLeer);
    assert!(mc < minmod, "MC ({mc}) must beat minmod ({minmod}) on smooth data");
    assert!(vl < minmod, "van Leer ({vl}) must beat minmod ({minmod})");
}

#[test]
fn powell_source_limits_divb_growth() {
    // 2-D rotating flow with an initially divergence-free B that the
    // scheme slowly corrupts: the 8-wave source keeps the max |divB|
    // bounded lower than the uncorrected run.
    let divb_after = |powell: bool| -> f64 {
        let mut mhd = IdealMhd::new(5.0 / 3.0);
        mhd.powell = powell;
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([8, 8], 2, 8, 0),
        );
        problems::orszag_tang(&mut g, &mhd);
        let cfg = SolverConfig::new(mhd, Scheme::muscl_rusanov()).with_cfl(0.3);
        let mut st = Stepper::new(cfg);
        st.run_until(&mut g, 0.0, 0.15, None);
        let m = g.params().block_dims;
        st.fill_ghosts(&mut g, None);
        let mut worst: f64 = 0.0;
        for (_, n) in g.blocks() {
            let h = g.layout().cell_size(n.key().level, m);
            let f = n.field();
            for c in f.shape().interior_box().iter() {
                let mut divb = 0.0;
                for d in 0..2 {
                    let mut cp = c;
                    cp[d] += 1;
                    let mut cm = c;
                    cm[d] -= 1;
                    divb += (f.at(cp, 4 + d) - f.at(cm, 4 + d)) / (2.0 * h[d]);
                }
                worst = worst.max(divb.abs() * h[0]);
            }
        }
        worst
    };
    let with = divb_after(true);
    let without = divb_after(false);
    assert!(
        with < without,
        "Powell source must reduce divB: with {with} vs without {without}"
    );
    assert!(with.is_finite() && with > 0.0);
}

#[test]
fn refluxing_cost_is_modest() {
    // enabling refluxing must not blow up runtime (it is O(faces), not
    // O(cells)); compare flux_evals bookkeeping instead of wall-clock for
    // determinism: same evals either way.
    let run = |reflux: bool| -> usize {
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([8, 8], 2, 4, 1),
        );
        problems::advected_gaussian(&mut g, &e, [1.0, 0.0], [0.5, 0.5], 0.15);
        let id = g.block_ids()[0];
        g.refine(
            id,
            ablock_core::grid::Transfer::Conservative(ablock_core::ops::ProlongOrder::Constant),
        )
        .unwrap();
        let cfg = SolverConfig::new(e, Scheme::muscl_rusanov()).with_refluxing(reflux);
        let mut st = Stepper::new(cfg);
        for _ in 0..3 {
            st.step_rk2(&mut g, 1e-3, None);
        }
        st.flux_evals
    };
    assert_eq!(run(true), run(false), "refluxing reuses the recorded fluxes");
}

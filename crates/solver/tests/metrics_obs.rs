//! Observability must be free: a recording metrics sink may add wall
//! time, but it must not perturb the numerics. Two identical runs — one
//! through the default null sink, one recording every span and counter —
//! have to produce bitwise-identical fields.

use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_obs::{phase, Metrics};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::problems;
use ablock_solver::stepper::Stepper;
use ablock_solver::SolverConfig;

fn pulse_grid(e: &Euler<2>) -> BlockGrid<2> {
    let mut g = BlockGrid::new(
        RootLayout::unit([2, 2], Boundary::Periodic),
        GridParams::new([8, 8], 2, 4, 1),
    );
    problems::advected_gaussian(&mut g, e, [0.7, 0.4], [0.5, 0.5], 0.12);
    g
}

fn run(metrics: Metrics) -> (Vec<f64>, Metrics) {
    let e = Euler::<2>::new(1.4);
    let mut g = pulse_grid(&e);
    let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
        .with_cfl(0.4)
        .with_metrics(metrics.clone());
    let mut st = Stepper::new(cfg);
    for _ in 0..4 {
        let dt = st.max_dt(&g);
        st.step_rk2(&mut g, dt, None);
    }
    let mut fields = Vec::new();
    for (_, n) in g.blocks() {
        fields.extend_from_slice(n.field().as_slice());
    }
    (fields, metrics)
}

#[test]
fn null_sink_leaves_step_rk2_bitwise_identical() {
    let (null_fields, null_metrics) = run(Metrics::null());
    let (rec_fields, rec_metrics) = run(Metrics::recording());

    assert_eq!(null_fields.len(), rec_fields.len());
    for (i, (a, b)) in null_fields.iter().zip(&rec_fields).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "field value {i} differs between null and recording runs: {a} vs {b}"
        );
    }

    // the null sink recorded nothing at all
    let null_snap = null_metrics.snapshot();
    assert!(null_snap.counters.is_empty());
    assert!(null_snap.spans.is_empty());

    // while the recording sink saw every solver phase
    let snap = rec_metrics.snapshot();
    for ph in [phase::GHOST_FILL, phase::FLUX, phase::UPDATE] {
        assert!(
            snap.span_total_ns(ph) > 0,
            "recording run missing phase '{ph}': {:?}",
            snap.spans.keys().collect::<Vec<_>>()
        );
    }
    assert!(snap.counter("engine.plan_rebuilds") >= 1);
    assert!(snap.counter("engine.plan_reuses") >= 1);
}

//! Plan-cache differential fuzz (DESIGN.md §12): a single cached-engine
//! [`Stepper`] driven through a random adapt+step schedule must be
//! **bitwise identical** to throwing the stepper away before every step.
//! The cached engine revalidates its sweep plans off the grid's topology
//! epoch, so the only way these can diverge is a stale-plan bug — this is
//! the fuzzed generalization of the hand-written `engine_epoch` cases.

use std::collections::HashMap;

use ablock_core::arena::BlockId;
use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::verify::check_grid;
use ablock_solver::{problems, Euler, Scheme, SolverConfig, Stepper};
use ablock_testkit::{cases, flag_for_key, gen_schedule, Schedule};

const DT: f64 = 1e-3;
const MAX_LEVEL: u8 = 2;
const TRANSFER: Transfer = Transfer::Conservative(ProlongOrder::LinearMinmod);

fn cfg<const D: usize>() -> SolverConfig<Euler<D>> {
    SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
}

fn base_grid<const D: usize>() -> BlockGrid<D> {
    let layout = RootLayout::unit([2; D], Boundary::Periodic);
    let mut g = BlockGrid::new(layout, GridParams::new([4; D], 2, D + 2, MAX_LEVEL));
    let mut vel = [0.0; D];
    vel[0] = 0.4;
    if D > 1 {
        vel[1] = 0.3;
    }
    problems::advected_gaussian(&mut g, &Euler::new(1.4), vel, [0.5; D], 0.2);
    g
}

fn apply_adapt<const D: usize>(grid: &mut BlockGrid<D>, seed: u64, density: u8) {
    let flags: HashMap<BlockId, Flag> = grid
        .block_ids()
        .into_iter()
        .filter_map(|id| {
            let key = grid.block(id).key();
            match flag_for_key(seed, key, MAX_LEVEL, density) {
                Flag::Keep => None,
                f => Some((id, f)),
            }
        })
        .collect();
    adapt(grid, &flags, TRANSFER);
}

fn signature<const D: usize>(grid: &BlockGrid<D>) -> Vec<(BlockKey<D>, Vec<u64>)> {
    let mut v: Vec<(BlockKey<D>, Vec<u64>)> = grid
        .blocks()
        .map(|(_, n)| {
            let f = n.field();
            let mut bits = Vec::new();
            for c in f.shape().interior_box().iter() {
                for var in 0..f.shape().nvar {
                    bits.push(f.at(c, var).to_bits());
                }
            }
            (n.key(), bits)
        })
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

/// Run the schedule with one long-lived stepper (plan cache carries
/// across every adapt); returns the final signature plus engine stats.
fn run_cached<const D: usize>(schedule: &Schedule) -> (Vec<(BlockKey<D>, Vec<u64>)>, u64, u64) {
    let mut grid = base_grid::<D>();
    let mut stepper: Stepper<D, Euler<D>> = Stepper::new(cfg());
    for round in &schedule.rounds {
        apply_adapt(&mut grid, round.flag_seed, round.density);
        for _ in 0..round.steps {
            stepper.step_rk2(&mut grid, DT, None);
        }
    }
    check_grid(&grid).unwrap();
    let stats = stepper.engine().stats();
    (signature(&grid), stats.rebuilds, stats.reuses)
}

/// Same schedule, but every single step gets a brand-new stepper — the
/// no-cache oracle.
fn run_fresh<const D: usize>(schedule: &Schedule) -> Vec<(BlockKey<D>, Vec<u64>)> {
    let mut grid = base_grid::<D>();
    for round in &schedule.rounds {
        apply_adapt(&mut grid, round.flag_seed, round.density);
        for _ in 0..round.steps {
            let mut stepper: Stepper<D, Euler<D>> = Stepper::new(cfg());
            stepper.step_rk2(&mut grid, DT, None);
        }
    }
    signature(&grid)
}

fn differential_case<const D: usize>(schedule: &Schedule) {
    let (cached, rebuilds, reuses) = run_cached::<D>(schedule);
    let fresh = run_fresh::<D>(schedule);
    let keys_a: Vec<_> = cached.iter().map(|(k, _)| *k).collect();
    let keys_b: Vec<_> = fresh.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys_a, keys_b, "leaf sets differ");
    for ((k, da), (_, db)) in cached.iter().zip(&fresh) {
        for (i, (&x, &y)) in da.iter().zip(db).enumerate() {
            assert!(
                x == y,
                "cached vs fresh stepper: block {k:?} word {i}: {:.17e} != {:.17e}",
                f64::from_bits(x),
                f64::from_bits(y)
            );
        }
    }
    // the cache must actually be exercised: at most one rebuild per adapt
    // round (plus the initial build), everything else a reuse
    let total_steps: u64 = schedule.rounds.iter().map(|r| r.steps as u64).sum();
    assert!(
        rebuilds <= schedule.rounds.len() as u64 + 1,
        "{rebuilds} rebuilds for {} rounds",
        schedule.rounds.len()
    );
    if total_steps > schedule.rounds.len() as u64 {
        assert!(reuses > 0, "no plan reuse across {total_steps} steps");
    }
}

#[test]
fn cached_stepper_matches_fresh_stepper_2d() {
    cases(25, 0x5EED_0030, |_, rng| {
        let schedule = gen_schedule(rng);
        differential_case::<2>(&schedule);
    });
}

#[test]
fn cached_stepper_matches_fresh_stepper_3d() {
    cases(8, 0x5EED_0031, |_, rng| {
        let schedule = gen_schedule(rng);
        differential_case::<3>(&schedule);
    });
}

//! Quantitative solver validation against analytic references.
//!
//! * Sod shock tube vs the exact Riemann solution (Toro's iteration),
//!   with L1-error and wave-position checks;
//! * Brio–Wu MHD shock tube structure checks (compound wave, jump
//!   ordering);
//! * Orszag–Tang vortex robustness (positivity through shock formation).
//!
//! These run on multi-block adaptive grids so they validate the data
//! structure + solver together, not the solver in isolation.

use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::mhd::{IdealMhd, IBX};
use ablock_solver::problems;
use ablock_solver::stepper::Stepper;
use ablock_solver::SolverConfig;

// ---------------------------------------------------------------------
// exact Riemann solver for the 1-D Euler equations (Toro ch. 4)
// ---------------------------------------------------------------------

struct ExactRiemann {
    g: f64,
    rho_l: f64,
    u_l: f64,
    p_l: f64,
    rho_r: f64,
    u_r: f64,
    p_r: f64,
    p_star: f64,
    u_star: f64,
}

impl ExactRiemann {
    fn new(g: f64, left: (f64, f64, f64), right: (f64, f64, f64)) -> Self {
        let (rho_l, u_l, p_l) = left;
        let (rho_r, u_r, p_r) = right;
        let a_l = (g * p_l / rho_l).sqrt();
        let a_r = (g * p_r / rho_r).sqrt();
        // pressure function and derivative for one side
        let f = |p: f64, rho: f64, pk: f64, a: f64| -> (f64, f64) {
            if p > pk {
                // shock
                let ak = 2.0 / ((g + 1.0) * rho);
                let bk = (g - 1.0) / (g + 1.0) * pk;
                let sq = (ak / (p + bk)).sqrt();
                ((p - pk) * sq, sq * (1.0 - (p - pk) / (2.0 * (p + bk))))
            } else {
                // rarefaction
                let pr = (p / pk).powf((g - 1.0) / (2.0 * g));
                (
                    2.0 * a / (g - 1.0) * (pr - 1.0),
                    1.0 / (rho * a) * (p / pk).powf(-(g + 1.0) / (2.0 * g)),
                )
            }
        };
        // Newton iteration from the two-rarefaction guess
        let mut p = ((a_l + a_r - 0.5 * (g - 1.0) * (u_r - u_l))
            / (a_l / p_l.powf((g - 1.0) / (2.0 * g)) + a_r / p_r.powf((g - 1.0) / (2.0 * g))))
        .powf(2.0 * g / (g - 1.0));
        for _ in 0..60 {
            let (fl, dl) = f(p, rho_l, p_l, a_l);
            let (fr, dr) = f(p, rho_r, p_r, a_r);
            let change = (fl + fr + (u_r - u_l)) / (dl + dr);
            p -= change;
            if (change / p).abs() < 1e-14 {
                break;
            }
        }
        let (fl, _) = f(p, rho_l, p_l, a_l);
        let (fr, _) = f(p, rho_r, p_r, a_r);
        let u_star = 0.5 * (u_l + u_r) + 0.5 * (fr - fl);
        ExactRiemann { g, rho_l, u_l, p_l, rho_r, u_r, p_r, p_star: p, u_star }
    }

    /// Sampled state (rho, u, p) at similarity coordinate `s = x/t`.
    fn sample(&self, s: f64) -> (f64, f64, f64) {
        let g = self.g;
        let (p_star, u_star) = (self.p_star, self.u_star);
        if s <= u_star {
            // left of the contact
            let a_l = (g * self.p_l / self.rho_l).sqrt();
            if p_star > self.p_l {
                // left shock
                let sl = self.u_l
                    - a_l * ((g + 1.0) / (2.0 * g) * p_star / self.p_l + (g - 1.0) / (2.0 * g))
                        .sqrt();
                if s < sl {
                    (self.rho_l, self.u_l, self.p_l)
                } else {
                    let r = self.rho_l
                        * ((p_star / self.p_l + (g - 1.0) / (g + 1.0))
                            / ((g - 1.0) / (g + 1.0) * p_star / self.p_l + 1.0));
                    (r, u_star, p_star)
                }
            } else {
                // left rarefaction
                let sh = self.u_l - a_l;
                let a_star = a_l * (p_star / self.p_l).powf((g - 1.0) / (2.0 * g));
                let st = u_star - a_star;
                if s < sh {
                    (self.rho_l, self.u_l, self.p_l)
                } else if s > st {
                    let r = self.rho_l * (p_star / self.p_l).powf(1.0 / g);
                    (r, u_star, p_star)
                } else {
                    let u = 2.0 / (g + 1.0) * (a_l + (g - 1.0) / 2.0 * self.u_l + s);
                    let a = 2.0 / (g + 1.0) * (a_l + (g - 1.0) / 2.0 * (self.u_l - s));
                    let r = self.rho_l * (a / a_l).powf(2.0 / (g - 1.0));
                    let p = self.p_l * (a / a_l).powf(2.0 * g / (g - 1.0));
                    (r, u, p)
                }
            }
        } else {
            // right of the contact
            let a_r = (g * self.p_r / self.rho_r).sqrt();
            if p_star > self.p_r {
                // right shock
                let sr = self.u_r
                    + a_r * ((g + 1.0) / (2.0 * g) * p_star / self.p_r + (g - 1.0) / (2.0 * g))
                        .sqrt();
                if s > sr {
                    (self.rho_r, self.u_r, self.p_r)
                } else {
                    let r = self.rho_r
                        * ((p_star / self.p_r + (g - 1.0) / (g + 1.0))
                            / ((g - 1.0) / (g + 1.0) * p_star / self.p_r + 1.0));
                    (r, u_star, p_star)
                }
            } else {
                let sh = self.u_r + a_r;
                let a_star = a_r * (p_star / self.p_r).powf((g - 1.0) / (2.0 * g));
                let st = u_star + a_star;
                if s > sh {
                    (self.rho_r, self.u_r, self.p_r)
                } else if s < st {
                    let r = self.rho_r * (p_star / self.p_r).powf(1.0 / g);
                    (r, u_star, p_star)
                } else {
                    let u = 2.0 / (g + 1.0) * (-a_r + (g - 1.0) / 2.0 * self.u_r + s);
                    let a = 2.0 / (g + 1.0) * (a_r - (g - 1.0) / 2.0 * (self.u_r - s));
                    let r = self.rho_r * (a / a_r).powf(2.0 / (g - 1.0));
                    let p = self.p_r * (a / a_r).powf(2.0 * g / (g - 1.0));
                    (r, u, p)
                }
            }
        }
    }
}

#[test]
fn exact_riemann_solver_sanity() {
    // Sod: p* ~ 0.30313, u* ~ 0.92745 (Toro table 4.3)
    let ex = ExactRiemann::new(1.4, (1.0, 0.0, 1.0), (0.125, 0.0, 0.1));
    assert!((ex.p_star - 0.30313).abs() < 2e-4, "p* = {}", ex.p_star);
    assert!((ex.u_star - 0.92745).abs() < 2e-4, "u* = {}", ex.u_star);
    // far field returns inputs
    assert_eq!(ex.sample(-10.0), (1.0, 0.0, 1.0));
    assert_eq!(ex.sample(10.0), (0.125, 0.0, 0.1));
}

fn run_sod(nblocks: i64, m: i64, t_end: f64) -> (BlockGrid<1>, Euler<1>) {
    let e = Euler::<1>::new(1.4);
    let mut g = BlockGrid::<1>::new(
        RootLayout::unit([nblocks], Boundary::Outflow),
        GridParams::new([m], 2, 3, 2),
    );
    problems::sod(&mut g, &e, 0.5);
    let mut st = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
    st.run_until(&mut g, 0.0, t_end, None);
    (g, e)
}

#[test]
fn sod_matches_exact_solution() {
    let t_end = 0.2;
    let (g, e) = run_sod(16, 8, t_end); // 128 cells
    let ex = ExactRiemann::new(1.4, (1.0, 0.0, 1.0), (0.125, 0.0, 0.1));
    let m = g.params().block_dims;
    let layout = g.layout().clone();
    let mut l1_rho = 0.0;
    let mut n = 0usize;
    for (_, node) in g.blocks() {
        for c in node.field().shape().interior_box().iter() {
            let x = layout.cell_center(node.key(), m, c)[0];
            let (rho, _, p) = ex.sample((x - 0.5) / t_end);
            l1_rho += (node.field().at(c, 0) - rho).abs();
            // pressure positive and bounded by the initial states
            let pc = e.pressure(&node.field().cell(c));
            assert!(pc > 0.0 && pc < 1.01, "pressure {pc} at x={x}");
            let _ = p;
            n += 1;
        }
    }
    l1_rho /= n as f64;
    assert!(l1_rho < 0.012, "Sod L1 density error {l1_rho} too large at 128 cells");
}

#[test]
fn sod_wave_positions() {
    let t_end = 0.2;
    let (g, e) = run_sod(16, 8, t_end);
    let m = g.params().block_dims;
    let layout = g.layout().clone();
    // collect (x, rho, u) sorted
    let mut prof: Vec<(f64, f64, f64)> = Vec::new();
    for (_, node) in g.blocks() {
        for c in node.field().shape().interior_box().iter() {
            let x = layout.cell_center(node.key(), m, c)[0];
            let rho = node.field().at(c, 0);
            let u = node.field().at(c, 1) / rho;
            prof.push((x, rho, u));
            let _ = &e;
        }
    }
    prof.sort_by(|a, b| a.0.total_cmp(&b.0));
    // shock: first x from the right where rho > 0.14 (post-shock ~0.2655);
    // exact shock position = 0.5 + 1.7522 * t = 0.8504
    let shock_x = prof
        .iter()
        .rev()
        .find(|(_, rho, _)| *rho > 0.2)
        .map(|(x, _, _)| *x)
        .unwrap();
    assert!(
        (shock_x - 0.8504).abs() < 0.03,
        "shock at {shock_x}, exact 0.8504"
    );
    // contact: density jumps from ~0.4263 to ~0.2655 near 0.5 + 0.9274 t
    let contact_exact = 0.5 + 0.92745 * t_end;
    let contact_x = prof
        .windows(2)
        .find(|w| w[0].1 > 0.34 && w[1].1 <= 0.34 && w[0].0 > 0.6)
        .map(|w| w[0].0)
        .unwrap_or(0.0);
    assert!(
        (contact_x - contact_exact).abs() < 0.04,
        "contact at {contact_x}, exact {contact_exact}"
    );
    // rarefaction head moves left at -a_l = -1.1832; numerical diffusion
    // smears the head upstream by a few cells, so detect a solid drop
    let head_exact = 0.5 - 1.1832 * t_end;
    let head_x = prof
        .iter()
        .find(|(_, rho, _)| *rho < 0.97)
        .map(|(x, _, _)| *x)
        .unwrap();
    assert!(
        (head_x - head_exact).abs() < 0.05,
        "rarefaction head at {head_x}, exact {head_exact}"
    );
}

#[test]
fn sod_converges_with_resolution() {
    let t_end = 0.2;
    let ex = ExactRiemann::new(1.4, (1.0, 0.0, 1.0), (0.125, 0.0, 0.1));
    let err = |nblocks: i64| -> f64 {
        let (g, _) = run_sod(nblocks, 8, t_end);
        let m = g.params().block_dims;
        let layout = g.layout().clone();
        let mut l1 = 0.0;
        let mut n = 0;
        for (_, node) in g.blocks() {
            for c in node.field().shape().interior_box().iter() {
                let x = layout.cell_center(node.key(), m, c)[0];
                let (rho, _, _) = ex.sample((x - 0.5) / t_end);
                l1 += (node.field().at(c, 0) - rho).abs();
                n += 1;
            }
        }
        l1 / n as f64
    };
    let coarse = err(8);
    let fine = err(32);
    // shocks limit convergence to ~O(h) in L1; demand a clear factor
    assert!(
        fine < coarse / 1.8,
        "no convergence: {coarse} -> {fine}"
    );
}

#[test]
fn brio_wu_structure() {
    // Brio & Wu (gamma = 2), t = 0.1: left fast rarefaction, compound
    // wave, contact, slow shock, right fast rarefaction.
    let mhd = IdealMhd::new(2.0);
    let mut g = BlockGrid::<1>::new(
        RootLayout::unit([32], Boundary::Outflow),
        GridParams::new([8], 2, 8, 2),
    );
    problems::brio_wu(&mut g, &mhd, 0.5);
    let mut st = Stepper::new(SolverConfig::new(mhd.clone(), Scheme::muscl_rusanov()));
    st.run_until(&mut g, 0.0, 0.1, None);
    let m = g.params().block_dims;
    let layout = g.layout().clone();
    let mut prof: Vec<(f64, f64, f64)> = Vec::new(); // (x, rho, by)
    for (_, node) in g.blocks() {
        for c in node.field().shape().interior_box().iter() {
            let x = layout.cell_center(node.key(), m, c)[0];
            prof.push((x, node.field().at(c, 0), node.field().at(c, IBX + 1)));
            // positivity throughout
            assert!(mhd.pressure(&node.field().cell(c)) > 0.0, "p < 0 at x={x}");
        }
    }
    prof.sort_by(|a, b| a.0.total_cmp(&b.0));
    // density rises above the left state inside the compound wave region
    let max_rho = prof.iter().map(|p| p.1).fold(0.0, f64::max);
    assert!(max_rho <= 1.0 + 1e-9, "density must not exceed the left state");
    // By reverses sign once, left-to-right (1 -> -1)
    let first = prof.first().unwrap().2;
    let last = prof.last().unwrap().2;
    assert!(first > 0.9 && last < -0.9, "By endpoints {first}, {last}");
    let crossings = prof.windows(2).filter(|w| w[0].2 > 0.0 && w[1].2 <= 0.0).count();
    assert_eq!(crossings, 1, "By must reverse exactly once");
    // the compound-wave density plateau (~0.67) exists between x=0.45..0.6
    let plateau = prof
        .iter()
        .filter(|(x, _, _)| (0.45..0.62).contains(x))
        .map(|p| p.1)
        .fold(0.0, f64::max);
    assert!(
        (0.55..0.85).contains(&plateau),
        "compound-wave plateau density {plateau} out of range"
    );
}

#[test]
fn orszag_tang_stays_physical_through_shock_formation() {
    let mhd = IdealMhd::new(5.0 / 3.0);
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([8, 8], 2, 8, 1),
    );
    problems::orszag_tang(&mut g, &mhd);
    let cfg = SolverConfig::new(mhd.clone(), Scheme::muscl_rusanov()).with_cfl(0.3);
    let mut st = Stepper::new(cfg);
    // t = 0.2: shocks have formed
    st.run_until(&mut g, 0.0, 0.2, None);
    let mut min_p = f64::INFINITY;
    for (_, node) in g.blocks() {
        for c in node.field().shape().interior_box().iter() {
            let u = node.field().cell(c);
            assert!(u.iter().all(|x| x.is_finite()));
            min_p = min_p.min(mhd.pressure(&u));
        }
    }
    assert!(min_p > 0.0, "pressure floor violated: {min_p}");
    // total energy conserved on the periodic box
    let e0 = {
        let mut g2 = BlockGrid::<2>::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([8, 8], 2, 8, 1),
        );
        problems::orszag_tang(&mut g2, &mhd);
        ablock_solver::stepper::total_conserved(&g2, 7)
    };
    let e1 = ablock_solver::stepper::total_conserved(&g, 7);
    // Powell source exchanges energy when divB != 0; bound the effect
    assert!((e1 - e0).abs() < 5e-3 * e0.abs(), "energy {e0} -> {e1}");
}

#[test]
fn sod_on_preadapted_grid_matches_uniform() {
    // run Sod on a grid pre-refined around the diaphragm: the refined run
    // must agree with a uniform run of the same finest resolution where
    // both are fine, demonstrating AMR does not corrupt the solution
    let t_end = 0.12;
    let e = Euler::<1>::new(1.4);
    // uniform 256 cells
    let (gu, _) = run_sod(32, 8, t_end);
    // adaptive: 16 blocks of 8 (128 coarse cells), middle refined once
    let mut ga = BlockGrid::<1>::new(
        RootLayout::unit([16], Boundary::Outflow),
        GridParams::new([8], 2, 3, 2),
    );
    problems::sod(&mut ga, &e, 0.5);
    use ablock_core::grid::Transfer;
    use ablock_core::ops::ProlongOrder;
    for bx in 6..10 {
        let id = ga.find(BlockKey::new(0, [bx])).unwrap();
        ga.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
    }
    problems::sod(&mut ga, &e, 0.5); // re-impose crisp ICs on fine cells
    let mut st = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
    st.run_until(&mut ga, 0.0, t_end, None);
    // compare in the refined window [0.4, 0.56] where the contact lives
    // at t = 0.12 (contact at 0.611 still inside? 0.5+0.927*0.12 = 0.611 —
    // outside; compare [0.4, 0.56]: rarefaction tail region)
    let sample = |g: &BlockGrid<1>, x: f64| -> f64 {
        let id = g.find_leaf_at([x]).unwrap();
        let node = g.block(id);
        let m = g.params().block_dims;
        let h = g.layout().cell_size(node.key().level, m)[0];
        let o = g.layout().block_origin(node.key(), m)[0];
        let ci = (((x - o) / h) as i64).clamp(0, m[0] - 1);
        node.field().at([ci], 0)
    };
    for i in 0..8 {
        let x = 0.41 + i as f64 * 0.02;
        let du = (sample(&gu, x) - sample(&ga, x)).abs();
        assert!(du < 0.02, "x={x}: uniform vs adaptive differ by {du}");
    }
}

//! Regression tests for the stale-plan footgun: adapting a grid and then
//! stepping WITHOUT calling `invalidate()` must behave exactly like a
//! brand-new stepper, because the engine revalidates its plan cache off
//! the grid's topology epoch.

use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::problems;
use ablock_solver::stepper::Stepper;
use ablock_solver::SolverConfig;

fn build() -> (BlockGrid<2>, Euler<2>) {
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([4, 4], 2, 4, 3),
    );
    problems::advected_gaussian(&mut g, &e, [1.0, -0.5], [0.4, 0.6], 0.15);
    (g, e)
}

fn refine_center(g: &mut BlockGrid<2>) {
    let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
    g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
}

fn collect(g: &BlockGrid<2>) -> Vec<(BlockKey<2>, Vec<f64>)> {
    let mut v: Vec<_> = g
        .blocks()
        .map(|(_, n)| (n.key(), n.field().as_slice().to_vec()))
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

#[test]
fn adapt_then_step_without_invalidate_matches_fresh_stepper() {
    let dt = 1e-3;

    // run A: one stepper lives across the adapt, never invalidated
    let (mut ga, e) = build();
    let mut sta = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
    for _ in 0..2 {
        sta.step_rk2(&mut ga, dt, None);
    }
    refine_center(&mut ga);
    for _ in 0..2 {
        sta.step_rk2(&mut ga, dt, None);
    }

    // run B: identical, but a brand-new stepper takes over after the adapt
    let (mut gb, e2) = build();
    let mut stb = Stepper::new(SolverConfig::new(e2.clone(), Scheme::muscl_rusanov()));
    for _ in 0..2 {
        stb.step_rk2(&mut gb, dt, None);
    }
    refine_center(&mut gb);
    let mut stb2 = Stepper::new(SolverConfig::new(e2, Scheme::muscl_rusanov()));
    for _ in 0..2 {
        stb2.step_rk2(&mut gb, dt, None);
    }

    // bitwise identical interiors, block by block
    let a = collect(&ga);
    let b = collect(&gb);
    assert_eq!(a.len(), b.len());
    let shape = ga.params().field_shape();
    for ((ka, fa), (kb, fb)) in a.iter().zip(&b) {
        assert_eq!(ka, kb);
        for c in shape.interior_box().iter() {
            let i = shape.lin(c);
            for v in 0..4 {
                assert_eq!(
                    fa[i + v].to_bits(),
                    fb[i + v].to_bits(),
                    "block {ka:?} cell {c:?} var {v}: {} vs {}",
                    fa[i + v],
                    fb[i + v]
                );
            }
        }
    }
    // the surviving stepper rebuilt exactly once — for the adapt
    assert_eq!(sta.engine().stats().rebuilds, 2);
}

#[test]
fn plans_are_reused_across_steps_and_rebuilt_once_per_adapt() {
    let (mut g, e) = build();
    let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
    for _ in 0..5 {
        st.step_rk2(&mut g, 1e-3, None);
    }
    // each RK2 step revalidates twice (one ghost fill per stage): 10 sweeps,
    // one plan build
    let s = st.engine().stats();
    assert_eq!(s.rebuilds, 1);
    assert_eq!(s.reuses, 9);

    refine_center(&mut g);
    for _ in 0..5 {
        st.step_rk2(&mut g, 1e-3, None);
    }
    let s = st.engine().stats();
    assert_eq!(s.rebuilds, 2, "exactly one rebuild per topology change");
    assert_eq!(s.reuses, 18);
}

//! The shared sweep engine: epoch-keyed plan cache + reusable scratch.
//!
//! Every stepper stack in the workspace (serial [`crate::stepper::Stepper`],
//! the shared-memory and distributed executors in `ablock-par`, multigrid
//! smoothers in [`crate::poisson`]) needs the same three things to sweep a
//! grid: a [`GhostExchange`] plan matching the current topology, per-block
//! RHS/stage scratch, and a primitive-variable buffer. A [`SweepEngine`]
//! owns all of them once, keyed on the grid's
//! [topology epoch](BlockGrid::epoch):
//!
//! * [`SweepEngine::revalidate`] compares the cached plan's epoch against
//!   the grid and rebuilds plan + scratch only on mismatch — callers never
//!   invalidate manually on the hot step path; adapting the grid bumps the
//!   epoch and the next sweep notices.
//! * Scratch is *resized* on epoch change, not reallocated per step:
//!   surviving per-block buffers keep their allocations, and a shape change
//!   (different block dims / nvar) clears them first.
//! * [`SweepEngine::stats`] exposes rebuild/reuse counters so tests and
//!   benches can assert the paper's amortization claim — adaptation is
//!   infrequent, stepping is hot, so `reuses >> rebuilds`.
//!
//! The per-block stage-update helpers ([`fe_update_block`],
//! [`rk2_stage1_block`], [`rk2_stage2_block`]) are the single source of the
//! update arithmetic; serial, pool, and distributed executors all call them,
//! which is what keeps their results bitwise identical.

use ablock_core::arena::BlockId;
use ablock_core::field::{FieldBlock, FieldShape};
use ablock_core::ghost::{BoundaryCtx, GhostConfig, GhostExchange};
use ablock_core::grid::BlockGrid;
use ablock_core::index::IVec;
use ablock_core::ops::ProlongOrder;
use ablock_obs::{phase, Metrics};

use crate::kernel::{apply_floors_block, FaceFluxStore, Scheme};
use crate::physics::Physics;
use crate::recon::Recon;

/// Custom physical-boundary ghost synthesizer.
pub type BcFn<const D: usize> = dyn Fn(&BoundaryCtx<D>, IVec<D>, &mut [f64]);

/// Ghost config consistent with a physics system and spatial scheme:
/// prolongation order matches the reconstruction order, and the physics'
/// vector triples get their normal components flipped at reflecting walls.
pub fn ghost_config_for<P: Physics>(phys: &P, scheme: Scheme) -> GhostConfig {
    GhostConfig {
        prolong_order: match scheme.recon {
            Recon::FirstOrder => ProlongOrder::Constant,
            Recon::Muscl(_) => ProlongOrder::LinearMinmod,
        },
        vector_components: phys.vector_components(),
        corners: false,
    }
}

/// Plan-cache observability: how often [`SweepEngine::revalidate`] rebuilt
/// versus reused the cached exchange plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Plan + scratch rebuilds (one per topology epoch the engine has seen).
    pub rebuilds: u64,
    /// Sweeps served by the cached plan without touching topology.
    pub reuses: u64,
    /// Blocks scanned by CFL max-wavespeed reductions routed through the
    /// engine ([`SweepEngine::note_rate_scans`]). The subcycled driver
    /// scans every block exactly once per outer step (one per-level
    /// reduction), never rescanning coarse blocks per fine substep —
    /// tests assert the count.
    pub rate_block_scans: u64,
}

/// Mutable views of the engine's per-block scratch, split per field so a
/// caller can hold `rhs` and `stage` (and the grid) simultaneously.
/// Slices are indexed by `BlockId::index()`.
pub struct Sweep<'a, const D: usize> {
    /// `L(u)` accumulator per block.
    pub rhs: &'a mut [FieldBlock<D>],
    /// Stage copy (`u^n` for RK2) per block.
    pub stage: &'a mut [FieldBlock<D>],
    /// Block-face flux records for refluxing; empty unless enabled via
    /// [`SweepEngine::with_flux_stores`].
    pub flux_stores: &'a mut [FaceFluxStore<D>],
    /// Shared primitive-variable buffer for serial kernels.
    pub prim_scratch: &'a mut Vec<f64>,
}

/// An interior/halo partition of a sweep for comm/compute overlap:
/// `interior` blocks' ghost fill has no dependency on in-flight data, so
/// their fluxes may be computed while the exchange proceeds; `halo`
/// blocks join after it completes. Both halves preserve the input order.
#[derive(Clone, Debug, Default)]
pub struct SweepSplit {
    /// Blocks safe to sweep during the exchange.
    pub interior: Vec<BlockId>,
    /// Blocks whose sweep must wait for the exchange to complete.
    pub halo: Vec<BlockId>,
}

fn split_ids(ids: &[BlockId], is_halo: impl Fn(BlockId) -> bool) -> SweepSplit {
    let (halo, interior) = ids.iter().partition(|&&id| is_halo(id));
    SweepSplit { interior, halo }
}

/// Epoch-keyed ghost-plan cache plus reusable sweep scratch.
pub struct SweepEngine<const D: usize> {
    config: GhostConfig,
    want_flux_stores: bool,
    plan: Option<GhostExchange<D>>,
    shape: Option<FieldShape<D>>,
    rhs: Vec<FieldBlock<D>>,
    stage: Vec<FieldBlock<D>>,
    flux_stores: Vec<FaceFluxStore<D>>,
    prim_scratch: Vec<f64>,
    stats: EngineStats,
    metrics: Metrics,
}

impl<const D: usize> SweepEngine<D> {
    /// New engine with an explicit ghost config (e.g. multigrid levels).
    pub fn new(config: GhostConfig) -> Self {
        SweepEngine {
            config,
            want_flux_stores: false,
            plan: None,
            shape: None,
            rhs: Vec::new(),
            stage: Vec::new(),
            flux_stores: Vec::new(),
            prim_scratch: Vec::new(),
            stats: EngineStats::default(),
            metrics: Metrics::null(),
        }
    }

    /// New engine whose ghost config is derived from physics + scheme
    /// (see [`ghost_config_for`]).
    pub fn for_scheme<P: Physics>(phys: &P, scheme: Scheme) -> Self {
        SweepEngine::new(ghost_config_for(phys, scheme))
    }

    /// Builder: also maintain per-block [`FaceFluxStore`] scratch (needed
    /// by Berger–Colella refluxing).
    pub fn with_flux_stores(mut self, on: bool) -> Self {
        self.want_flux_stores = on;
        self
    }

    /// Builder: install a metrics sink (plan rebuild/reuse counters and a
    /// [`phase::GHOST_FILL`] span flow into it). Null by default.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Setter form of [`SweepEngine::with_metrics`] for engines that are
    /// already built (e.g. the per-level multigrid engines).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The installed metrics sink (the null sink unless overridden).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The ghost config plans are built with.
    pub fn config(&self) -> &GhostConfig {
        &self.config
    }

    /// Rebuild/reuse counters since construction.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Record `n` block scans by a CFL max-wavespeed reduction (see
    /// [`EngineStats::rate_block_scans`]).
    pub fn note_rate_scans(&mut self, n: u64) {
        self.stats.rate_block_scans += n;
        self.metrics.incr("engine.rate_block_scans", n);
    }

    /// Force the next [`SweepEngine::revalidate`] to rebuild, regardless of
    /// epoch. Never needed after grid adaptation (the epoch covers that);
    /// only for out-of-band field-shape or config changes.
    pub fn invalidate(&mut self) {
        self.plan = None;
    }

    /// Make the cached plan and scratch match the grid's current topology.
    /// Cheap when the [epoch](BlockGrid::epoch) is unchanged (one integer
    /// compare); otherwise rebuilds the plan and resizes scratch in place.
    /// Returns `true` if a rebuild happened.
    pub fn revalidate(&mut self, grid: &BlockGrid<D>) -> bool {
        if self.plan.as_ref().is_some_and(|p| p.is_current(grid)) {
            self.stats.reuses += 1;
            self.metrics.incr("engine.plan_reuses", 1);
            return false;
        }
        self.plan = Some(GhostExchange::build(grid, self.config.clone()));
        let cap = grid
            .block_ids()
            .iter()
            .map(|id| id.index() + 1)
            .max()
            .unwrap_or(0);
        // grid.field_shape() (not params().field_shape()): includes the
        // solid-mask plane when a geometry is installed, so stage snapshots
        // can copy whole allocations.
        let shape = grid.field_shape();
        if self.shape != Some(shape) {
            self.rhs.clear();
            self.stage.clear();
            self.flux_stores.clear();
            self.shape = Some(shape);
        }
        self.rhs.resize_with(cap, || FieldBlock::zeros(shape));
        self.stage.resize_with(cap, || FieldBlock::zeros(shape));
        if self.want_flux_stores {
            let dims = grid.params().block_dims;
            self.flux_stores
                .resize_with(cap, || FaceFluxStore::new(dims, shape.nvar));
        }
        self.stats.rebuilds += 1;
        self.metrics.incr("engine.plan_rebuilds", 1);
        true
    }

    /// The cached plan. Panics if [`SweepEngine::revalidate`] has never run;
    /// the plan may be stale if the grid adapted since the last revalidate.
    pub fn plan(&self) -> &GhostExchange<D> {
        self.plan
            .as_ref()
            .expect("SweepEngine::plan before revalidate")
    }

    /// Revalidate, then fill ghosts with the cached plan.
    pub fn fill_ghosts(&mut self, grid: &mut BlockGrid<D>, bc: Option<&BcFn<D>>) {
        self.revalidate(grid);
        let _span = self.metrics.span(phase::GHOST_FILL);
        let plan = self.plan.as_ref().unwrap();
        match bc {
            Some(f) => plan.fill_with(grid, f),
            None => plan.fill(grid),
        }
    }

    /// Split `ids` for shared-memory comm/compute overlap: a block is
    /// `halo` iff it receives a phase-2 (prolongation) ghost task — its
    /// ghost fill completes only with the phase-2 scatter, so its flux
    /// must wait for the join; every other block's ghosts are final after
    /// phase 1 and its flux may overlap the scatter. `ids` must be in
    /// arena order (as from [`BlockGrid::block_ids`]); the partition
    /// preserves it. Panics before [`SweepEngine::revalidate`].
    pub fn split_phase2(&self, ids: &[BlockId]) -> SweepSplit {
        let halo = self.plan().phase2_dsts();
        split_ids(ids, |id| halo.binary_search(&id).is_ok())
    }

    /// Split `ids` for distributed comm/compute overlap: a block is
    /// `halo` iff its ghost fill depends on remote data, directly or one
    /// hop through a phase-2 source's restriction-filled slab (see
    /// [`GhostExchange::remote_halo_dsts`]). Order-preserving like
    /// [`SweepEngine::split_phase2`]. Panics before
    /// [`SweepEngine::revalidate`].
    pub fn split_remote(
        &self,
        ids: &[BlockId],
        is_remote: &dyn Fn(BlockId) -> bool,
    ) -> SweepSplit {
        let halo = self.plan().remote_halo_dsts(is_remote);
        split_ids(ids, |id| halo.binary_search(&id).is_ok())
    }

    /// Split-borrow the scratch arena. Call after
    /// [`SweepEngine::revalidate`] so sizes match the grid.
    pub fn sweep(&mut self) -> Sweep<'_, D> {
        Sweep {
            rhs: &mut self.rhs,
            stage: &mut self.stage,
            flux_stores: &mut self.flux_stores,
            prim_scratch: &mut self.prim_scratch,
        }
    }
}

/// Forward-Euler update of one block: `u += dt·r` over the interior, then
/// positivity floors. Returns cells floored. Solid-masked cells are
/// skipped outright — even a zero RHS would flip `-0.0` sign bits — so
/// immersed-solid state stays bitwise frozen (DESIGN.md §18).
pub fn fe_update_block<const D: usize, P: Physics>(
    phys: &P,
    field: &mut FieldBlock<D>,
    rhs: &FieldBlock<D>,
    dt: f64,
) -> usize {
    let shape = *field.shape();
    let ps = shape.plane_stride();
    let ib = shape.interior_box();
    let mut rowbox = ib;
    rowbox.hi[0] = ib.lo[0] + 1;
    let row_len = (ib.hi[0] - ib.lo[0]) as usize;
    let masked = shape.mask_plane;
    let mo = shape.nvar * ps;
    let us = field.as_mut_slice();
    let rs = rhs.as_slice();
    for rc in rowbox.iter() {
        let i0 = shape.lin(rc);
        for v in 0..shape.nvar {
            let o = v * ps + i0;
            if masked {
                for k in 0..row_len {
                    if us[mo + i0 + k] != 0.0 {
                        continue;
                    }
                    us[o + k] += dt * rs[o + k];
                }
            } else {
                let (urow, rrow) = (&mut us[o..o + row_len], &rs[o..o + row_len]);
                for (x, &r) in urow.iter_mut().zip(rrow) {
                    *x += dt * r;
                }
            }
        }
    }
    apply_floors_block(phys, field)
}

/// SSP-RK2 stage 1 on one block: snapshot `u^n` into `stage`, then
/// `u* = u + dt·L(u)` with floors. Returns cells floored.
pub fn rk2_stage1_block<const D: usize, P: Physics>(
    phys: &P,
    field: &mut FieldBlock<D>,
    rhs: &FieldBlock<D>,
    stage: &mut FieldBlock<D>,
    dt: f64,
) -> usize {
    stage.as_mut_slice().copy_from_slice(field.as_slice());
    fe_update_block(phys, field, rhs, dt)
}

/// SSP-RK2 stage 2 on one block:
/// `u^{n+1} = ½u^n + ½(u* + dt·L(u*))` with floors. Returns cells floored.
pub fn rk2_stage2_block<const D: usize, P: Physics>(
    phys: &P,
    field: &mut FieldBlock<D>,
    rhs: &FieldBlock<D>,
    stage: &FieldBlock<D>,
    dt: f64,
) -> usize {
    let shape = *field.shape();
    let ps = shape.plane_stride();
    let ib = shape.interior_box();
    let mut rowbox = ib;
    rowbox.hi[0] = ib.lo[0] + 1;
    let row_len = (ib.hi[0] - ib.lo[0]) as usize;
    let masked = shape.mask_plane;
    let mo = shape.nvar * ps;
    let us = field.as_mut_slice();
    let rs = rhs.as_slice();
    let ss = stage.as_slice();
    for rc in rowbox.iter() {
        let i0 = shape.lin(rc);
        for v in 0..shape.nvar {
            let o = v * ps + i0;
            if masked {
                // skip solid cells: u* == u^n there, and the averaging
                // arithmetic must not touch the frozen state
                for k in 0..row_len {
                    if us[mo + i0 + k] != 0.0 {
                        continue;
                    }
                    us[o + k] = 0.5 * ss[o + k] + 0.5 * (us[o + k] + dt * rs[o + k]);
                }
            } else {
                let urow = &mut us[o..o + row_len];
                let (rrow, srow) = (&rs[o..o + row_len], &ss[o..o + row_len]);
                for (k, x) in urow.iter_mut().enumerate() {
                    *x = 0.5 * srow[k] + 0.5 * (*x + dt * rrow[k]);
                }
            }
        }
    }
    apply_floors_block(phys, field)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::Euler;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::layout::{Boundary, RootLayout};

    fn grid_1d() -> BlockGrid<1> {
        BlockGrid::new(
            RootLayout::unit([4], Boundary::Periodic),
            GridParams::new([8], 2, 3, 3),
        )
    }

    #[test]
    fn revalidate_rebuilds_only_on_epoch_change() {
        let e = Euler::<1>::new(1.4);
        let mut g = grid_1d();
        let mut eng = SweepEngine::for_scheme(&e, Scheme::muscl_rusanov());
        assert!(eng.revalidate(&g));
        for _ in 0..5 {
            assert!(!eng.revalidate(&g));
        }
        assert_eq!(eng.stats(), EngineStats { rebuilds: 1, reuses: 5, ..Default::default() });

        let id = g.block_ids()[0];
        g.refine(id, Transfer::Conservative(ProlongOrder::Constant)).unwrap();
        assert!(eng.revalidate(&g));
        assert!(!eng.revalidate(&g));
        assert_eq!(eng.stats(), EngineStats { rebuilds: 2, reuses: 6, ..Default::default() });
        assert!(eng.plan().is_current(&g));
    }

    #[test]
    fn scratch_resizes_with_grid() {
        let e = Euler::<1>::new(1.4);
        let mut g = grid_1d();
        let mut eng = SweepEngine::for_scheme(&e, Scheme::muscl_rusanov())
            .with_flux_stores(true);
        eng.revalidate(&g);
        let n0 = eng.sweep().rhs.len();
        let id = g.block_ids()[0];
        g.refine(id, Transfer::Conservative(ProlongOrder::Constant)).unwrap();
        eng.revalidate(&g);
        let sw = eng.sweep();
        assert!(sw.rhs.len() > n0);
        assert_eq!(sw.rhs.len(), sw.stage.len());
        assert_eq!(sw.rhs.len(), sw.flux_stores.len());
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let e = Euler::<1>::new(1.4);
        let g = grid_1d();
        let mut eng = SweepEngine::for_scheme(&e, Scheme::muscl_rusanov());
        eng.revalidate(&g);
        eng.invalidate();
        assert!(eng.revalidate(&g));
        assert_eq!(eng.stats().rebuilds, 2);
    }
}

//! Flux correction (refluxing) at coarse/fine block faces.
//!
//! Without correction, the flux a coarse block computes at a refinement
//! boundary differs from the area-weighted sum of the fine blocks' fluxes
//! through the same physical interface, so the scheme leaks conserved
//! quantities there (the small drift EXPERIMENTS.md documents). The
//! classical remedy (Berger & Colella) replaces the coarse flux by the
//! fine average. We apply it as an **RHS correction** after the kernels
//! run:
//!
//! ```text
//! rhs[coarse cell adjacent to face] ±= (F_coarse − ⟨F_fine⟩) / h_coarse
//! ```
//!
//! applied per stage, which makes multi-stage integrators exactly
//! conservative too. The fine side is untouched — fine fluxes are the
//! truth; only the coarse neighbor's view is corrected.
//!
//! Only one-level jumps are corrected (`max_level_jump = 1`, the paper's
//! configuration); the pass asserts if it meets a deeper jump.

use ablock_core::arena::BlockId;
use ablock_core::field::FieldBlock;
use ablock_core::grid::{BlockGrid, FaceConn};
use ablock_core::index::{Face, IBox, IVec};

use crate::kernel::FaceFluxStore;

/// One coarse-fine face pairing: the geometry both reflux variants share.
/// `region` is the coarse face-adjacent cell row covered by `fine`;
/// coarse cell `c` maps to the `2^(D-1)` fine interface cells at
/// transverse coordinates `2*c[d] + q[d] + {0,1}`.
struct CfFace<const D: usize> {
    coarse: BlockId,
    fine: BlockId,
    face: Face,
    region: IBox<D>,
    q: IVec<D>,
    /// Coarse cell size along the face normal.
    h: f64,
    /// `+1` on high faces, `−1` on low faces.
    sign: f64,
}

/// Visit every (coarse block, face, finer neighbor) pairing of the grid,
/// in block-arena order — the single source of the coverage arithmetic
/// used by [`reflux_rhs`] and [`reflux_state`]. Panics on level jumps
/// deeper than one (the paper's `max_level_jump = 1` configuration).
fn for_each_coarse_fine_face<const D: usize>(
    grid: &BlockGrid<D>,
    mut visit: impl FnMut(&CfFace<D>),
) {
    let m = grid.params().block_dims;
    for (cid, node) in grid.blocks() {
        let ck = node.key();
        for f in Face::all::<D>() {
            let FaceConn::Blocks(list) = node.face(f) else { continue };
            // only faces whose neighbors are finer
            let finer: Vec<BlockId> = list
                .iter()
                .copied()
                .filter(|&n| grid.block(n).key().level > ck.level)
                .collect();
            if finer.is_empty() {
                continue;
            }
            let dir = f.dim as usize;
            let h = grid.layout().cell_size(ck.level, m)[dir];
            let sign = if f.high { 1.0 } else { -1.0 };
            for &nid in &finer {
                let nk = grid.block(nid).key();
                assert_eq!(
                    nk.level,
                    ck.level + 1,
                    "refluxing supports one-level jumps (paper configuration)"
                );
                let nu = unwrap_neighbor(ck, f, nk);
                // coarse transverse coverage of this fine neighbor (same
                // arithmetic as the ghost-plan restriction tasks)
                let mut cov_lo = [0i64; D];
                let mut cov_hi = [0i64; D];
                let mut q = [0i64; D];
                for d in 0..D {
                    cov_lo[d] = nu.coords[d] * m[d] / 2 - ck.coords[d] * m[d];
                    cov_hi[d] = (nu.coords[d] + 1) * m[d] / 2 - ck.coords[d] * m[d];
                    q[d] = 2 * ck.coords[d] * m[d] - nu.coords[d] * m[d];
                }
                let mut region = IBox::new(cov_lo, cov_hi).intersect(&IBox::from_dims(m));
                // collapse the normal axis to the face-adjacent cell row
                let adj = if f.high { m[dir] - 1 } else { 0 };
                region.lo[dir] = adj;
                region.hi[dir] = adj + 1;
                visit(&CfFace { coarse: cid, fine: nid, face: f, region, q, h, sign });
            }
        }
    }
}

/// Area-weighted average of the fine store's interface fluxes covering
/// coarse cell `c` — overwrites `favg`.
fn fine_face_avg<const D: usize>(
    store: &FaceFluxStore<D>,
    cf: &CfFace<D>,
    c: IVec<D>,
    favg: &mut [f64],
) {
    let dir = cf.face.dim as usize;
    let weight = 1.0 / (1u32 << (D - 1)) as f64;
    let fine_face = cf.face.opposite();
    favg.fill(0.0);
    // the 2^(D-1) fine interface cells covering coarse cell c
    for t in 0..(1usize << D) {
        if (t >> dir) & 1 != 0 {
            continue;
        }
        let mut fc: IVec<D> = [0; D];
        for d in 0..D {
            if d == dir {
                fc[d] = 0; // ignored by the store
            } else {
                fc[d] = 2 * c[d] + cf.q[d] + ((t >> d) & 1) as i64;
            }
        }
        let ff = store.flux(fine_face, fc);
        for (a, &x) in favg.iter_mut().zip(ff) {
            *a += x * weight;
        }
    }
}

/// Apply the reflux correction to every coarse block's RHS.
///
/// `stores` holds each block's recorded face fluxes (from
/// [`crate::kernel::compute_rhs_block_fluxes`]) and `rhs` each block's
/// RHS field, both indexed by `BlockId::index()`. Returns the number of
/// corrected coarse interface cells.
pub fn reflux_rhs<const D: usize>(
    grid: &BlockGrid<D>,
    stores: &[FaceFluxStore<D>],
    rhs: &mut [FieldBlock<D>],
) -> usize {
    let nvar = grid.params().nvar;
    let mut corrected = 0usize;
    let mut favg = vec![0.0; nvar];
    for_each_coarse_fine_face(grid, |cf| {
        let coarse_store = &stores[cf.coarse.index()];
        let fine_store = &stores[cf.fine.index()];
        let rhs_block = &mut rhs[cf.coarse.index()];
        for c in cf.region.iter() {
            fine_face_avg(fine_store, cf, c, &mut favg);
            let fcoarse = coarse_store.flux(cf.face, c);
            for v in 0..nvar {
                *rhs_block.at_mut(c, v) += cf.sign * (fcoarse[v] - favg[v]) / cf.h;
            }
            corrected += 1;
        }
    });
    corrected
}

/// State-space reflux for the subcycled stepper: correct the **solution**
/// of coarse blocks on `level` by the mismatch between their own
/// *time-integrated* face fluxes (`accum_own`) and the area-weighted
/// fine-side accumulation over the same parent interval (`accum_par`,
/// indexed by the fine block):
///
/// ```text
/// u[coarse cell adjacent to face] ±= (A_own − ⟨A_par⟩) / h_coarse
/// ```
///
/// The accumulators already carry `Σ_s w_s Δt F_s` (stage-weighted,
/// time-integrated), so no `dt` factor appears here. No positivity floors
/// run after the correction — it is a pure conservation fix-up whose
/// magnitude vanishes with the flux mismatch (DESIGN.md §17).
/// `apply_to` filters the corrected coarse blocks (ownership in the
/// distributed executor; `|_| true` elsewhere). Returns corrected cells.
pub fn reflux_state<const D: usize>(
    grid: &mut BlockGrid<D>,
    accum_own: &[FaceFluxStore<D>],
    accum_par: &[FaceFluxStore<D>],
    level: u8,
    apply_to: &dyn Fn(BlockId) -> bool,
) -> usize {
    let nvar = grid.params().nvar;
    let mut corrected = 0usize;
    let mut favg = vec![0.0; nvar];
    // collect corrections under the shared (immutable) traversal, apply
    // after — same per-cell arithmetic order as the RHS variant
    let mut fixes: Vec<(BlockId, IVec<D>, Vec<f64>)> = Vec::new();
    for_each_coarse_fine_face(grid, |cf| {
        if grid.block(cf.coarse).key().level != level || !apply_to(cf.coarse) {
            return;
        }
        let own = &accum_own[cf.coarse.index()];
        let par = &accum_par[cf.fine.index()];
        for c in cf.region.iter() {
            fine_face_avg(par, cf, c, &mut favg);
            let fcoarse = own.flux(cf.face, c);
            let fix: Vec<f64> = (0..nvar)
                .map(|v| cf.sign * (fcoarse[v] - favg[v]) / cf.h)
                .collect();
            fixes.push((cf.coarse, c, fix));
        }
    });
    for (id, c, fix) in fixes {
        let field = grid.block_mut(id).field_mut();
        // Solid coarse cells stay bitwise frozen (DESIGN.md §18): the fine
        // side's wall fluxes carry no mass/energy across the interface, so
        // skipping the correction loses nothing conserved.
        if field.is_solid(c) {
            continue;
        }
        for (v, dx) in fix.iter().enumerate() {
            *field.at_mut(c, v) += dx;
        }
        corrected += 1;
    }
    corrected
}

/// The (coarse, fine, coarse-side face) triples [`reflux_state`] visits
/// for coarse blocks on `level`, in the shared traversal order.
/// Distributed executors use this to plan fetches of remote fine-side
/// accumulator faces before refluxing: the coarse owner needs the fine
/// block's time-integrated fluxes on `face.opposite()`.
pub fn coarse_fine_fetch_list<const D: usize>(
    grid: &BlockGrid<D>,
    level: u8,
) -> Vec<(BlockId, BlockId, Face)> {
    let mut out = Vec::new();
    for_each_coarse_fine_face(grid, |cf| {
        if grid.block(cf.coarse).key().level == level {
            out.push((cf.coarse, cf.fine, cf.face));
        }
    });
    out
}

/// The neighbor's key translated adjacent to `kb` across `f` (undoing
/// periodic wrap) — same arithmetic the ghost planner uses.
fn unwrap_neighbor<const D: usize>(
    kb: ablock_core::key::BlockKey<D>,
    f: Face,
    nk: ablock_core::key::BlockKey<D>,
) -> ablock_core::key::BlockKey<D> {
    let adj = kb.face_neighbor(f);
    let j = (nk.level - kb.level) as u32;
    let anc = nk.at_coarser_level(kb.level);
    let mut c = nk.coords;
    for d in 0..D {
        c[d] += (adj.coords[d] - anc.coords[d]) << j;
    }
    ablock_core::key::BlockKey::new(nk.level, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::Euler;
    use crate::kernel::{compute_rhs_block_fluxes, Scheme};
    use crate::physics::Physics;
    use crate::problems;
    use ablock_core::ghost::{GhostConfig, GhostExchange};
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_core::ops::ProlongOrder;

    /// Evaluate all RHS with flux recording and apply refluxing; return the
    /// volume-weighted RHS sum per variable (zero iff exactly conservative).
    fn rhs_budget(grid: &mut BlockGrid<2>, e: &Euler<2>) -> Vec<f64> {
        let plan = GhostExchange::build(
            grid,
            GhostConfig {
                prolong_order: ProlongOrder::LinearMinmod,
                vector_components: e.vector_components(),
                corners: false,
            },
        );
        plan.fill(grid);
        let ids = grid.block_ids();
        let shape = grid.params().field_shape();
        let cap = ids.iter().map(|i| i.index() + 1).max().unwrap();
        let mut rhs: Vec<FieldBlock<2>> = (0..cap).map(|_| FieldBlock::zeros(shape)).collect();
        let mut stores: Vec<FaceFluxStore<2>> = (0..cap)
            .map(|_| FaceFluxStore::new(grid.params().block_dims, e.nvar()))
            .collect();
        let mut scratch = Vec::new();
        for &id in &ids {
            let node = grid.block(id);
            let h = grid.layout().cell_size(node.key().level, grid.params().block_dims);
            compute_rhs_block_fluxes(
                e,
                Scheme::muscl_rusanov(),
                node.field(),
                h,
                &mut rhs[id.index()],
                &mut scratch,
                Some(&mut stores[id.index()]),
            );
        }
        let n = reflux_rhs(grid, &stores, &mut rhs);
        assert!(n > 0, "test grids must have coarse/fine faces");
        // budget: sum over blocks of rhs * cell volume
        let mut budget = vec![0.0; e.nvar()];
        for &id in &ids {
            let lvl = grid.block(id).key().level;
            let h = grid.layout().cell_size(lvl, grid.params().block_dims);
            let vol: f64 = h.iter().product();
            for (v, b) in budget.iter_mut().enumerate() {
                *b += rhs[id.index()].interior_sum(v) * vol;
            }
        }
        budget
    }

    fn refined_pulse_grid() -> (BlockGrid<2>, Euler<2>) {
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([8, 8], 2, 4, 2),
        );
        problems::advected_gaussian(&mut g, &e, [0.7, 0.3], [0.4, 0.45], 0.15);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        (g, e)
    }

    #[test]
    fn refluxed_rhs_is_exactly_conservative() {
        let (mut g, e) = refined_pulse_grid();
        let budget = rhs_budget(&mut g, &e);
        for (v, b) in budget.iter().enumerate() {
            assert!(
                b.abs() < 1e-12,
                "var {v}: refluxed RHS budget {b} (must telescope to zero)"
            );
        }
    }

    #[test]
    fn unrefluxed_rhs_leaks() {
        // sanity: without the correction the budget is NOT zero, so the
        // test above is actually measuring something.
        let (mut g, e) = refined_pulse_grid();
        let plan = GhostExchange::build(&g, GhostConfig::default());
        plan.fill(&mut g);
        let ids = g.block_ids();
        let shape = g.params().field_shape();
        let mut scratch = Vec::new();
        let mut budget = vec![0.0; e.nvar()];
        let mut rhs = FieldBlock::zeros(shape);
        for &id in &ids {
            let node = g.block(id);
            let h = g.layout().cell_size(node.key().level, g.params().block_dims);
            crate::kernel::compute_rhs_block(
                &e,
                Scheme::muscl_rusanov(),
                node.field(),
                h,
                &mut rhs,
                &mut scratch,
            );
            let vol: f64 = h.iter().product();
            for (v, b) in budget.iter_mut().enumerate() {
                *b += rhs.interior_sum(v) * vol;
            }
        }
        let leak: f64 = budget.iter().map(|b| b.abs()).sum();
        assert!(leak > 1e-10, "expected a visible flux mismatch, got {leak}");
    }

    #[test]
    fn flux_store_layout_roundtrip() {
        let mut s = FaceFluxStore::<3>::new([4, 6, 8], 2);
        let f = Face::new(1, true);
        s.flux_mut(f, [3, 99, 7])[0] = 42.0; // normal comp ignored
        assert_eq!(s.flux(f, [3, 0, 7])[0], 42.0);
        assert_eq!(s.face(f).len(), 4 * 8 * 2);
        // distinct transverse cells map to distinct slots
        let mut seen = std::collections::HashSet::new();
        for x in 0..4 {
            for z in 0..8 {
                assert!(seen.insert(s.offset(f, [x, 0, z])));
            }
        }
    }
}

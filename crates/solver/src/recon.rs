//! Interface reconstruction: first-order (Godunov) and second-order MUSCL
//! with slope limiters.
//!
//! The paper's ghost-cell discussion distinguishes first-order operators
//! (one ghost layer) from "so-called higher-resolution methods" (van Leer
//! ref. \[6\]; more layers). MUSCL reconstruction here needs two ghost
//! layers, matching the default `nghost = 2` of the grids.
//!
//! Reconstruction runs in primitive variables (robust near shocks) and
//! returns the left/right interface states; limiters are the classics:
//! minmod, monotonized central (MC), and van Leer's harmonic limiter.

/// Slope limiter for MUSCL reconstruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Limiter {
    /// Most dissipative; TVD.
    Minmod,
    /// Monotonized central-difference (van Leer 1977); sharper.
    MonotonizedCentral,
    /// Van Leer's harmonic-mean limiter.
    VanLeer,
}

/// Reconstruction scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Recon {
    /// Piecewise-constant: `uL = u_i`, `uR = u_{i+1}` (first order).
    FirstOrder,
    /// Piecewise-linear MUSCL with the given limiter (second order).
    Muscl(Limiter),
}

impl Recon {
    /// Ghost layers the scheme needs.
    pub fn required_ghosts(&self) -> i64 {
        match self {
            Recon::FirstOrder => 1,
            Recon::Muscl(_) => 2,
        }
    }
}

/// Limited slope for cell `i` given backward difference `db = u_i − u_{i−1}`
/// and forward difference `df = u_{i+1} − u_i` (undivided).
#[inline]
pub fn limited_slope(limiter: Limiter, db: f64, df: f64) -> f64 {
    match limiter {
        Limiter::Minmod => {
            if db * df <= 0.0 {
                0.0
            } else if db.abs() < df.abs() {
                db
            } else {
                df
            }
        }
        Limiter::MonotonizedCentral => {
            if db * df <= 0.0 {
                0.0
            } else {
                let c = 0.5 * (db + df);
                let lim = 2.0 * db.abs().min(df.abs());
                c.signum() * c.abs().min(lim)
            }
        }
        Limiter::VanLeer => {
            if db * df <= 0.0 {
                0.0
            } else {
                2.0 * db * df / (db + df)
            }
        }
    }
}

/// Reconstruct the two states at the `i−1/2` interface from the four-cell
/// stencil `[u_{i−2}, u_{i−1}, u_i, u_{i+1}]`, one variable at a time:
/// `uL` extrapolated from cell `i−1`, `uR` from cell `i`. For
/// [`Recon::FirstOrder`] the outer cells are ignored.
#[inline]
pub fn reconstruct_interface(
    recon: Recon,
    umm: f64,
    um: f64,
    up: f64,
    upp: f64,
) -> (f64, f64) {
    match recon {
        Recon::FirstOrder => (um, up),
        Recon::Muscl(lim) => {
            let sl = limited_slope(lim, um - umm, up - um);
            let sr = limited_slope(lim, up - um, upp - up);
            (um + 0.5 * sl, up - 0.5 * sr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limiters_vanish_at_extrema() {
        for lim in [Limiter::Minmod, Limiter::MonotonizedCentral, Limiter::VanLeer] {
            assert_eq!(limited_slope(lim, 1.0, -1.0), 0.0);
            assert_eq!(limited_slope(lim, -2.0, 0.5), 0.0);
            assert_eq!(limited_slope(lim, 0.0, 3.0), 0.0);
        }
    }

    #[test]
    fn limiters_exact_on_linear_data() {
        for lim in [Limiter::Minmod, Limiter::MonotonizedCentral, Limiter::VanLeer] {
            let s = limited_slope(lim, 0.7, 0.7);
            assert!((s - 0.7).abs() < 1e-14, "{lim:?}");
        }
    }

    #[test]
    fn limiter_ordering_dissipation() {
        // minmod <= MC on a smooth monotone profile
        let db = 1.0;
        let df = 2.0;
        let mm = limited_slope(Limiter::Minmod, db, df);
        let mc = limited_slope(Limiter::MonotonizedCentral, db, df);
        let vl = limited_slope(Limiter::VanLeer, db, df);
        assert_eq!(mm, 1.0);
        assert_eq!(mc, 1.5); // central 1.5, cap 2*min = 2
        assert!((vl - 4.0 / 3.0).abs() < 1e-14);
        assert!(mm <= vl && vl <= mc);
    }

    #[test]
    fn mc_caps_at_twice_min_difference() {
        let s = limited_slope(Limiter::MonotonizedCentral, 0.1, 10.0);
        assert!((s - 0.2).abs() < 1e-14);
    }

    #[test]
    fn first_order_ignores_outer_cells() {
        let (l, r) = reconstruct_interface(Recon::FirstOrder, 99.0, 1.0, 2.0, -99.0);
        assert_eq!((l, r), (1.0, 2.0));
        assert_eq!(Recon::FirstOrder.required_ghosts(), 1);
    }

    #[test]
    fn muscl_reproduces_linear_interface_value() {
        // data u_i = 3i: interface at i-1/2 between cells 1 and 2 is 4.5
        let vals = [0.0, 3.0, 6.0, 9.0];
        for lim in [Limiter::Minmod, Limiter::MonotonizedCentral, Limiter::VanLeer] {
            let (l, r) =
                reconstruct_interface(Recon::Muscl(lim), vals[0], vals[1], vals[2], vals[3]);
            assert!((l - 4.5).abs() < 1e-14);
            assert!((r - 4.5).abs() < 1e-14);
            assert_eq!(Recon::Muscl(lim).required_ghosts(), 2);
        }
    }

    #[test]
    fn muscl_stays_monotone_at_jump() {
        // step data: reconstruction must not overshoot [0, 1]
        for lim in [Limiter::Minmod, Limiter::MonotonizedCentral, Limiter::VanLeer] {
            let (l, r) = reconstruct_interface(Recon::Muscl(lim), 0.0, 0.0, 1.0, 1.0);
            assert!((0.0..=1.0).contains(&l), "{lim:?} uL {l}");
            assert!((0.0..=1.0).contains(&r), "{lim:?} uR {r}");
        }
    }
}

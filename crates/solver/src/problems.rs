//! Canonical initial conditions used by the tests, examples, and the
//! benchmark harness.
//!
//! Everything is expressed as a primitive-variable profile over physical
//! coordinates and applied through [`set_initial`], so the same problem
//! runs unchanged on a uniform grid, an adapted block grid, or inside the
//! distributed machine.

use ablock_core::grid::BlockGrid;

use crate::euler::Euler;
use crate::mhd::{IdealMhd, IBX, IMX};
use crate::physics::Physics;

/// Fill every block's interior from `profile(x, w)` where `w` receives
/// primitive variables; states are converted and stored conservatively.
pub fn set_initial<const D: usize, P: Physics>(
    grid: &mut BlockGrid<D>,
    phys: &P,
    profile: impl Fn([f64; D], &mut [f64]),
) {
    let m = grid.params().block_dims;
    let layout = grid.layout().clone();
    let n = phys.nvar();
    let mut w = vec![0.0; n];
    for id in grid.block_ids() {
        let key = grid.block(id).key();
        let phys = phys.clone();
        grid.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            w.iter_mut().for_each(|v| *v = 0.0);
            profile(x, &mut w);
            phys.prim_to_cons(&w, u);
        });
    }
}

/// Sod shock tube along x: `(ρ, u, p) = (1, 0, 1)` left of `x0`,
/// `(0.125, 0, 0.1)` right.
pub fn sod<const D: usize>(grid: &mut BlockGrid<D>, e: &Euler<D>, x0: f64) {
    set_initial(grid, e, |x, w| {
        if x[0] < x0 {
            w[0] = 1.0;
            w[1 + D] = 1.0;
        } else {
            w[0] = 0.125;
            w[1 + D] = 0.1;
        }
    });
}

/// Smooth density pulse advected by a uniform flow (exact solution known;
/// used for convergence studies).
pub fn advected_gaussian<const D: usize>(
    grid: &mut BlockGrid<D>,
    e: &Euler<D>,
    vel: [f64; D],
    center: [f64; D],
    width: f64,
) {
    set_initial(grid, e, |x, w| {
        let mut r2 = 0.0;
        for d in 0..D {
            r2 += (x[d] - center[d]) * (x[d] - center[d]);
        }
        w[0] = 1.0 + 0.5 * (-r2 / (width * width)).exp();
        w[1..1 + D].copy_from_slice(&vel);
        w[1 + D] = 1.0;
    });
}

/// Sedov-like point blast: ambient `(1, 0, p_amb)` with energy dumped in a
/// ball of radius `r0` around `center`.
pub fn sedov_blast<const D: usize>(
    grid: &mut BlockGrid<D>,
    e: &Euler<D>,
    center: [f64; D],
    r0: f64,
    p_blast: f64,
) {
    set_initial(grid, e, |x, w| {
        let mut r2 = 0.0;
        for d in 0..D {
            r2 += (x[d] - center[d]) * (x[d] - center[d]);
        }
        w[0] = 1.0;
        w[1 + D] = if r2 < r0 * r0 { p_blast } else { 1e-3 };
    });
}

/// Brio–Wu MHD shock tube along x (γ = 2 by convention):
/// left `(ρ, p, By) = (1, 1, 1)`, right `(0.125, 0.1, −1)`, `Bx = 0.75`.
pub fn brio_wu<const D: usize>(grid: &mut BlockGrid<D>, m: &IdealMhd, x0: f64) {
    set_initial(grid, m, |x, w| {
        w[IBX] = 0.75;
        if x[0] < x0 {
            w[0] = 1.0;
            w[IBX + 1] = 1.0;
            w[7] = 1.0;
        } else {
            w[0] = 0.125;
            w[IBX + 1] = -1.0;
            w[7] = 0.1;
        }
    });
}

/// Orszag–Tang vortex on a periodic `[0,1]²` domain (2-D MHD turbulence
/// benchmark). γ = 5/3.
pub fn orszag_tang(grid: &mut BlockGrid<2>, m: &IdealMhd) {
    use std::f64::consts::PI;
    let g = m.gamma;
    set_initial(grid, m, |x, w| {
        let (xx, yy) = (2.0 * PI * x[0], 2.0 * PI * x[1]);
        w[0] = g * g / (4.0 * PI);
        w[IMX] = -yy.sin();
        w[IMX + 1] = xx.sin();
        w[IBX] = -yy.sin() / (4.0 * PI).sqrt();
        w[IBX + 1] = (2.0 * xx).sin() / (4.0 * PI).sqrt();
        w[7] = g / (4.0 * PI);
    });
}

/// Spherical MHD blast: ambient plasma with uniform `B`, over-pressured
/// ball — the refinement-chasing workload used for the scaling figures.
pub fn mhd_blast<const D: usize>(
    grid: &mut BlockGrid<D>,
    m: &IdealMhd,
    center: [f64; D],
    r0: f64,
    p_in: f64,
    b0: f64,
) {
    set_initial(grid, m, |x, w| {
        let mut r2 = 0.0;
        for d in 0..D {
            r2 += (x[d] - center[d]) * (x[d] - center[d]);
        }
        w[0] = 1.0;
        w[IBX] = b0 / 2f64.sqrt();
        w[IBX + 1] = b0 / 2f64.sqrt();
        w[7] = if r2 < r0 * r0 { p_in } else { 0.1 };
    });
}

/// Parker-like radial wind from a central ball (the solar-wind substitute;
/// see DESIGN.md substitution #3): inside `r_src` the state is pinned to a
/// radial outflow, optionally boosted by a CME-like pressure pulse.
#[derive(Clone, Debug)]
pub struct WindSource<const D: usize> {
    /// Center of the source ball.
    pub center: [f64; D],
    /// Radius of the pinned region.
    pub r_src: f64,
    /// Outflow speed at the source surface.
    pub v_wind: f64,
    /// Source density.
    pub rho: f64,
    /// Source pressure.
    pub p: f64,
    /// Radial magnetic field magnitude at the source.
    pub b: f64,
    /// CME pulse: `(t_on, t_off, pressure_boost, density_boost)`.
    pub pulse: Option<(f64, f64, f64, f64)>,
}

impl<const D: usize> WindSource<D> {
    /// Overwrite cells inside the source ball with the wind state at time
    /// `t` (call after every step — the standard inner-boundary trick).
    pub fn apply(&self, grid: &mut BlockGrid<D>, m: &IdealMhd, t: f64) {
        let dims = grid.params().block_dims;
        let layout = grid.layout().clone();
        let (pb, rb) = match self.pulse {
            Some((t0, t1, pb, rb)) if t >= t0 && t < t1 => (pb, rb),
            _ => (1.0, 1.0),
        };
        let mut w = [0.0; 8];
        for id in grid.block_ids() {
            let key = grid.block(id).key();
            let m = m.clone();
            grid.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, dims, c);
                let mut r2 = 0.0;
                for d in 0..D {
                    r2 += (x[d] - self.center[d]) * (x[d] - self.center[d]);
                }
                if r2 < self.r_src * self.r_src {
                    let r = r2.sqrt().max(1e-10);
                    w = [0.0; 8];
                    w[0] = self.rho * rb;
                    for d in 0..D {
                        let e = (x[d] - self.center[d]) / r;
                        w[IMX + d] = self.v_wind * e;
                        w[IBX + d] = self.b * e;
                    }
                    w[7] = self.p * pb;
                    m.prim_to_cons(&w, u);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepper::total_conserved;
    use ablock_core::grid::GridParams;
    use ablock_core::layout::{Boundary, RootLayout};

    #[test]
    fn sod_sets_two_states() {
        let e = Euler::<1>::new(1.4);
        let mut g = BlockGrid::<1>::new(
            RootLayout::unit([4], Boundary::Outflow),
            GridParams::new([8], 2, 3, 2),
        );
        sod(&mut g, &e, 0.5);
        let left = g.find_leaf_at([0.1]).unwrap();
        let right = g.find_leaf_at([0.9]).unwrap();
        assert!((g.block(left).field().at([0], 0) - 1.0).abs() < 1e-14);
        assert!((g.block(right).field().at([7], 0) - 0.125).abs() < 1e-14);
    }

    #[test]
    fn gaussian_total_mass() {
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([8, 8], 2, 4, 2),
        );
        advected_gaussian(&mut g, &e, [1.0, 0.5], [0.5, 0.5], 0.1);
        let mass = total_conserved(&g, 0);
        // domain volume 1, background 1, pulse adds ~0.5*pi*w^2
        assert!(mass > 1.0 && mass < 1.1, "mass {mass}");
    }

    #[test]
    fn brio_wu_has_constant_bx() {
        let m = IdealMhd::new(2.0);
        let mut g = BlockGrid::<1>::new(
            RootLayout::unit([8], Boundary::Outflow),
            GridParams::new([8], 2, 8, 2),
        );
        brio_wu(&mut g, &m, 0.5);
        for (_, n) in g.blocks() {
            for c in n.field().shape().interior_box().iter() {
                assert!((n.field().at(c, IBX) - 0.75).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn orszag_tang_is_periodic_compatible() {
        let m = IdealMhd::new(5.0 / 3.0);
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([8, 8], 2, 8, 2),
        );
        orszag_tang(&mut g, &m);
        // velocity field has zero mean on the periodic box
        let mx = total_conserved(&g, IMX);
        let my = total_conserved(&g, IMX + 1);
        assert!(mx.abs() < 1e-10, "mean mx {mx}");
        assert!(my.abs() < 1e-10, "mean my {my}");
        // all pressures positive
        for (_, n) in g.blocks() {
            for c in n.field().shape().interior_box().iter() {
                assert!(m.pressure(&n.field().cell(c)) > 0.0);
            }
        }
    }

    #[test]
    fn wind_source_pins_center() {
        let m = IdealMhd::new(5.0 / 3.0);
        let mut g = BlockGrid::<2>::new(
            RootLayout::new([2, 2], [-1.0, -1.0], [2.0, 2.0], [Boundary::Outflow; 6]),
            GridParams::new([8, 8], 2, 8, 2),
        );
        set_initial(&mut g, &m, |_, w| {
            w[0] = 0.01;
            w[7] = 0.001;
        });
        let src = WindSource {
            center: [0.0, 0.0],
            r_src: 0.3,
            v_wind: 1.0,
            rho: 1.0,
            p: 0.5,
            b: 0.1,
            pulse: Some((1.0, 2.0, 10.0, 4.0)),
        };
        src.apply(&mut g, &m, 0.0);
        let id = g.find_leaf_at([0.1, 0.1]).unwrap();
        // the cell at (0.1, 0.1) is inside the ball: density pinned to 1
        let m_dims = g.params().block_dims;
        let mut found = false;
        let node = g.block(id);
        for c in node.field().shape().interior_box().iter() {
            let x = g.layout().cell_center(node.key(), m_dims, c);
            if (x[0] * x[0] + x[1] * x[1]).sqrt() < 0.25 {
                assert!((node.field().at(c, 0) - 1.0).abs() < 1e-12);
                found = true;
            }
        }
        assert!(found);
        // during the pulse the density quadruples
        src.apply(&mut g, &m, 1.5);
        let node = g.block(id);
        for c in node.field().shape().interior_box().iter() {
            let x = g.layout().cell_center(node.key(), m_dims, c);
            if (x[0] * x[0] + x[1] * x[1]).sqrt() < 0.25 {
                assert!((node.field().at(c, 0) - 4.0).abs() < 1e-12);
            }
        }
    }
}

//! Berger–Oliger local time stepping (subcycling) over the level hierarchy.
//!
//! Under [`TimeStepMode::Global`] every block advances with the globally
//! CFL-limited `dt`, so the finest level's cell size throttles the whole
//! grid. Subcycling instead advances level ℓ with `dt₀ / 2^(ℓ-ℓ₀)`: one
//! coarse step spawns two half-length steps on the next finer level,
//! recursively, so each level runs at *its own* CFL limit and coarse
//! blocks stop paying for fine resolution they don't have. On a grid
//! where refinement covers a small fraction of the domain this is the
//! paper's dominant savings after adaptivity itself.
//!
//! Three couplings make the recursion correct:
//!
//! 1. **Time-interpolated ghost fills.** A fine substep at interior time
//!    `t₀ + θ·Δt_coarse` needs coarse ghost data *at that time*. The
//!    driver snapshots the interiors of every prolongation-source block
//!    before the coarse level advances, then linearly blends
//!    `(1-θ)·old + θ·new` into those blocks around each fine ghost fill
//!    (restoring the true state afterwards). `θ = 0` installs the
//!    snapshot verbatim and `θ = 1` is a no-op, so no roundoff enters at
//!    the endpoints.
//! 2. **Per-level exchange plans.** Filling the whole grid's ghosts per
//!    fine substep would erase the savings. [`GhostExchange::sublevel_plan`]
//!    filters the cached full plan to the tasks one level's fill needs
//!    (its own destinations plus the restriction tasks feeding its
//!    prolongation sources); plans are cached per topology epoch in
//!    [`SubcycleState`].
//! 3. **Flux-accumulated refluxing.** With stages and substeps at
//!    different cadences, conservation requires comparing *time-integrated*
//!    face fluxes: each level accumulates `Σ_s w_s Δt_ℓ F_s` into its own
//!    per-substep accumulator (`accum_own`) and into a parent-cycle
//!    accumulator (`accum_par`); when a coarse substep's fine children
//!    finish, [`reflux_state`] replaces the coarse face flux by the area-
//!    and time-averaged fine flux directly on the conserved state. The
//!    two accumulators exist because their reset schedules conflict:
//!    `accum_own` resets every own substep, `accum_par` once per parent
//!    cycle.
//!
//! The driver is executor-agnostic: [`step_subcycled`] and [`max_dt0`]
//! are free functions over a [`SubcycleBackend`], implemented here for
//! the serial [`Stepper`] and in `ablock-par` for the shared-memory and
//! distributed executors. The global-`dt` path is untouched and remains
//! the reference oracle: on a single-level grid the subcycled driver
//! reduces to it bitwise (asserted below), and on refined grids the
//! differential suite checks conserved totals to roundoff.

use ablock_core::arena::BlockId;
use ablock_core::ghost::{extract_box, insert_box, GhostExchange, GhostTask};
use ablock_core::grid::BlockGrid;
use ablock_obs::phase;

use crate::config::{SolverConfig, TimeStepMode};
use crate::engine::{fe_update_block, rk2_stage1_block, rk2_stage2_block, BcFn, SweepEngine};
use crate::kernel::{compute_rhs_block_fluxes, max_rate_block, FaceFluxStore};
use crate::physics::Physics;
use crate::reflux::reflux_state;
use crate::stepper::{Stepper, TimeScheme};

/// Span names for per-level substep timing (`Metrics::span` wants
/// `&'static str`); levels ≥ 15 share the last slot.
const LEVEL_SPANS: [&str; 16] = [
    "step.lvl0",
    "step.lvl1",
    "step.lvl2",
    "step.lvl3",
    "step.lvl4",
    "step.lvl5",
    "step.lvl6",
    "step.lvl7",
    "step.lvl8",
    "step.lvl9",
    "step.lvl10",
    "step.lvl11",
    "step.lvl12",
    "step.lvl13",
    "step.lvl14",
    "step.lvl15",
];

/// The static span name for one level's substeps.
pub fn level_span(level: u8) -> &'static str {
    LEVEL_SPANS[(level as usize).min(LEVEL_SPANS.len() - 1)]
}

/// Epoch-keyed scratch for the subcycled driver: the level table, one
/// filtered exchange plan per level, prolongation-source snapshots for
/// time interpolation, and the two flux accumulators feeding
/// [`reflux_state`]. Owned by each executor next to its [`SweepEngine`];
/// [`SubcycleState::revalidate`] rebuilds everything when the grid's
/// topology epoch moves, exactly like the engine's plan cache.
#[derive(Default)]
pub struct SubcycleState<const D: usize> {
    epoch: Option<u64>,
    /// Distinct refinement levels present, ascending.
    levels: Vec<u8>,
    /// Blocks of each level, in arena order (filtered to owned blocks by
    /// distributed backends).
    level_ids: Vec<Vec<BlockId>>,
    /// Per-level filtered exchange plan (see
    /// [`GhostExchange::sublevel_plan`]).
    plans: Vec<GhostExchange<D>>,
    /// Prolongation-source blocks of each level's plan — the coarse
    /// blocks whose interiors get time-interpolated around fine fills.
    p2src: Vec<Vec<BlockId>>,
    /// Old-time interior data of `p2src[li]`, refreshed by the parent
    /// level at the start of each of its substeps.
    snapshots: Vec<Vec<Vec<f64>>>,
    /// Substep length of each level in finest-granularity units
    /// (`2^(lvl_max - lvl)`); exact powers of two so every `dt_ℓ` and
    /// every θ is an exact binary fraction.
    units: Vec<u64>,
    /// Time-integrated face fluxes of the *current own substep* of each
    /// block (coarse side of the reflux correction).
    pub accum_own: Vec<FaceFluxStore<D>>,
    /// Time-integrated face fluxes over the *parent's current cycle*
    /// (fine side of the reflux correction; zeroed by the parent before
    /// it recurses).
    pub accum_par: Vec<FaceFluxStore<D>>,
}

impl<const D: usize> SubcycleState<D> {
    /// Empty state; first [`SubcycleState::revalidate`] populates it.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the cached tables match the grid's topology epoch.
    pub fn is_current(&self, grid: &BlockGrid<D>) -> bool {
        self.epoch == Some(grid.epoch())
    }

    /// Distinct levels present, ascending.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Blocks the backend advances at level index `li`.
    pub fn ids(&self, li: usize) -> &[BlockId] {
        &self.level_ids[li]
    }

    /// The filtered exchange plan for level index `li`.
    pub fn plan(&self, li: usize) -> &GhostExchange<D> {
        &self.plans[li]
    }

    /// Substep length of level index `li` in finest-granularity units.
    pub fn units_at(&self, li: usize) -> u64 {
        self.units[li]
    }

    /// Level index of refinement level `level`, if present.
    pub fn level_index(&self, level: u8) -> Option<usize> {
        self.levels.binary_search(&level).ok()
    }

    /// Rebuild the level tables, per-level plans, prolongation-source
    /// lists, and (iff refluxing) the flux accumulators for the grid's
    /// current topology. Cheap no-op when the epoch is unchanged. Also
    /// revalidates the backend's engine so `plan()` is current.
    pub fn revalidate<B: SubcycleBackend<D>>(&mut self, backend: &mut B, grid: &BlockGrid<D>) {
        if self.is_current(grid) {
            // The engine still counts a reuse per outer step so the
            // amortization stats match the global path.
            backend.cfg_engine().1.revalidate(grid);
            return;
        }
        let refluxing;
        {
            let (cfg, engine) = backend.cfg_engine();
            refluxing = cfg.refluxing;
            engine.revalidate(grid);
            let mut levels: Vec<u8> = grid.blocks().map(|(_, n)| n.key().level).collect();
            levels.sort_unstable();
            levels.dedup();
            let plan = engine.plan();
            self.plans = levels.iter().map(|&l| plan.sublevel_plan(grid, l)).collect();
            self.levels = levels;
        }
        self.p2src = self
            .plans
            .iter()
            .map(|p| {
                let mut srcs: Vec<BlockId> = p
                    .phase2()
                    .iter()
                    .filter_map(|t| match t {
                        GhostTask::Prolong { src, .. } => Some(*src),
                        _ => None,
                    })
                    .collect();
                srcs.sort_unstable();
                srcs.dedup();
                // Distributed backends interpolate only blocks they own;
                // mirrors carry owner-interpolated data via the exchange.
                srcs.retain(|&id| backend.is_owned(id));
                srcs
            })
            .collect();
        self.level_ids = self
            .levels
            .iter()
            .map(|&l| backend.level_ids(grid, l))
            .collect();
        self.snapshots = vec![Vec::new(); self.levels.len()];
        let lmax = *self.levels.last().expect("grid has no blocks");
        self.units = self.levels.iter().map(|&l| 1u64 << (lmax - l)).collect();
        if refluxing {
            let cap = grid
                .block_ids()
                .iter()
                .map(|id| id.index() + 1)
                .max()
                .unwrap_or(0);
            let dims = grid.params().block_dims;
            let nvar = grid.params().nvar;
            self.accum_own.clear();
            self.accum_own.resize_with(cap, || FaceFluxStore::new(dims, nvar));
            self.accum_par.clear();
            self.accum_par.resize_with(cap, || FaceFluxStore::new(dims, nvar));
        }
        self.epoch = Some(grid.epoch());
    }

    /// Record the old-time interiors of level `li`'s prolongation
    /// sources — called by the *parent* level at the start of each of
    /// its substeps, before it advances.
    pub fn snapshot_level(&mut self, grid: &BlockGrid<D>, li: usize) {
        let SubcycleState { p2src, snapshots, .. } = self;
        let snaps = &mut snapshots[li];
        snaps.clear();
        for &id in &p2src[li] {
            let f = grid.block(id).field();
            snaps.push(extract_box(f, f.shape().interior_box()));
        }
    }

    /// Run `f` (a ghost fill with level `li`'s plan) with every
    /// prolongation source's interior temporarily set to
    /// `(1-θ)·old + θ·current`, restoring the current state afterwards.
    /// `θ = 1` runs `f` directly (current *is* the new time) and `θ = 0`
    /// installs the snapshot verbatim, so the endpoints are exact.
    pub fn with_lerped_sources<R>(
        &self,
        grid: &mut BlockGrid<D>,
        li: usize,
        theta: f64,
        f: impl FnOnce(&mut BlockGrid<D>, &GhostExchange<D>) -> R,
    ) -> R {
        let plan = &self.plans[li];
        let srcs = &self.p2src[li];
        if theta == 1.0 || srcs.is_empty() {
            return f(grid, plan);
        }
        let snaps = &self.snapshots[li];
        debug_assert_eq!(srcs.len(), snaps.len(), "fill before parent snapshot");
        let mut saved: Vec<Vec<f64>> = Vec::with_capacity(srcs.len());
        for (k, &id) in srcs.iter().enumerate() {
            let ib = grid.block(id).field().shape().interior_box();
            let cur = extract_box(grid.block(id).field(), ib);
            let old = &snaps[k];
            debug_assert_eq!(cur.len(), old.len());
            if theta == 0.0 {
                insert_box(grid.block_mut(id).field_mut(), ib, old);
            } else {
                let blend: Vec<f64> = old
                    .iter()
                    .zip(&cur)
                    .map(|(&a, &b)| (1.0 - theta) * a + theta * b)
                    .collect();
                insert_box(grid.block_mut(id).field_mut(), ib, &blend);
            }
            saved.push(cur);
        }
        let r = f(grid, plan);
        for (k, &id) in srcs.iter().enumerate() {
            let ib = grid.block(id).field().shape().interior_box();
            insert_box(grid.block_mut(id).field_mut(), ib, &saved[k]);
        }
        r
    }
}

/// What the subcycled driver needs from an executor. Implemented by the
/// serial [`Stepper`] below and by the shared-memory and distributed
/// executors in `ablock-par`; the driver recursion itself is shared, so
/// every backend advances blocks in the same order with the same update
/// arithmetic — the basis of the bitwise differential tests.
pub trait SubcycleBackend<const D: usize> {
    /// The physics system being integrated.
    type Phys: Physics;

    /// Split-borrow the config and the engine (plan cache + scratch).
    fn cfg_engine(&mut self) -> (&SolverConfig<Self::Phys>, &mut SweepEngine<D>);

    /// Blocks this executor advances at `level`, in arena order
    /// (distributed backends return only owned blocks).
    fn level_ids(&self, grid: &BlockGrid<D>, level: u8) -> Vec<BlockId>;

    /// Whether this executor owns `id` (controls which blocks are
    /// time-interpolated and which coarse blocks it refluxes). Serial
    /// and shared-memory executors own everything.
    fn is_owned(&self, _id: BlockId) -> bool {
        true
    }

    /// Fill level `li`'s ghosts at interior time `θ` of the parent's
    /// current substep (see [`SubcycleState::with_lerped_sources`]).
    fn fill_level(
        &mut self,
        grid: &mut BlockGrid<D>,
        state: &SubcycleState<D>,
        li: usize,
        theta: f64,
        bc: Option<&BcFn<D>>,
    );

    /// Compute `L(u)` (and face fluxes iff refluxing) into the engine's
    /// scratch for `ids`.
    fn sweep_level(&mut self, grid: &BlockGrid<D>, ids: &[BlockId]);

    /// Max wavespeed/`h` rate per level index, scanning every owned
    /// block exactly once (report the scan count via
    /// [`SweepEngine::note_rate_scans`]). Distributed backends reduce
    /// across ranks so every rank sees the same `dt₀`.
    fn level_rates(&mut self, grid: &BlockGrid<D>, state: &SubcycleState<D>) -> Vec<f64>;

    /// Hook before level `li` refluxes: distributed backends fetch the
    /// fine-side `accum_par` faces owned by other ranks. No-op serially.
    fn pre_reflux(&mut self, _grid: &BlockGrid<D>, _state: &mut SubcycleState<D>, _li: usize) {}
}

fn interior_cells<const D: usize>(grid: &BlockGrid<D>) -> u64 {
    let dims = grid.params().block_dims;
    (0..D).map(|a| dims[a] as u64).product()
}

/// Largest stable `dt₀` for the *coarsest* level: each level ℓ must
/// satisfy its own CFL limit at `dt₀ / 2^(ℓ-ℓ₀)`, so
/// `dt₀ = min_ℓ 2^(ℓ-ℓ₀) · cfl / rate_ℓ`. One scan of every block per
/// call (the per-level reduction the subcycled path replaces the global
/// `max_dt` scan with).
pub fn max_dt0<const D: usize, B: SubcycleBackend<D>>(
    backend: &mut B,
    grid: &BlockGrid<D>,
    state: &mut SubcycleState<D>,
) -> f64 {
    state.revalidate(backend, grid);
    let rates = backend.level_rates(grid, state);
    let cfl = backend.cfg_engine().0.cfl;
    let mut dt0 = f64::INFINITY;
    for (li, &rate) in rates.iter().enumerate() {
        if rate > 0.0 {
            // units[0]/units[li] = 2^(lvl_li - lvl_0), an exact power of
            // two, so dt_li = dt0 / scale reproduces cfl/rate exactly.
            let scale = (state.units[0] / state.units[li]) as f64;
            dt0 = dt0.min(scale * cfl / rate);
        }
    }
    dt0
}

/// Advance the whole hierarchy by one coarsest-level step `dt₀`,
/// subcycling finer levels. Returns cells clamped by positivity floors.
pub fn step_subcycled<const D: usize, B: SubcycleBackend<D>>(
    backend: &mut B,
    grid: &mut BlockGrid<D>,
    state: &mut SubcycleState<D>,
    dt0: f64,
    bc: Option<&BcFn<D>>,
) -> usize {
    state.revalidate(backend, grid);
    let metrics = backend.cfg_engine().0.metrics.clone();
    metrics.incr("subcycle.steps", 1);
    // What a global-dt step at the finest level's dt would cost over the
    // same interval — the denominator of the subcycling efficiency.
    let nblocks = grid.block_ids().len() as u64;
    metrics.incr(
        "subcycle.cell_updates_uniform",
        nblocks * interior_cells(grid) * state.units[0],
    );
    advance_level(backend, grid, state, 0, 0, 0, 0, dt0, bc)
}

/// One substep of level index `li` covering `[u0, u0 + units[li])` in
/// finest-granularity units, recursing into the finer levels; `parent_u0`
/// and `parent_units` locate this substep inside the parent's cycle for
/// the ghost-fill time interpolation.
#[allow(clippy::too_many_arguments)]
fn advance_level<const D: usize, B: SubcycleBackend<D>>(
    backend: &mut B,
    grid: &mut BlockGrid<D>,
    state: &mut SubcycleState<D>,
    li: usize,
    u0: u64,
    parent_u0: u64,
    parent_units: u64,
    dt0: f64,
    bc: Option<&BcFn<D>>,
) -> usize {
    let nlv = state.levels.len();
    let units = state.units[li];
    // Exact: units/units[0] is a negative power of two.
    let dt = dt0 * (units as f64 / state.units[0] as f64);
    let theta_at = |u: u64| -> f64 {
        if parent_units == 0 {
            0.0
        } else {
            (u - parent_u0) as f64 / parent_units as f64
        }
    };
    let (refluxing, time_scheme) = {
        let cfg = backend.cfg_engine().0;
        (cfg.refluxing, cfg.time_scheme)
    };
    let weights: &[f64] = match time_scheme {
        TimeScheme::ForwardEuler => &[1.0],
        TimeScheme::SspRk2 => &[0.5, 0.5],
    };
    let metrics = backend.cfg_engine().0.metrics.clone();
    let span_name = level_span(state.levels[li]);
    let mut floored = 0usize;
    {
        let _span = metrics.span(span_name);
        let ids: Vec<BlockId> = state.level_ids[li].clone();
        if refluxing {
            for &id in &ids {
                state.accum_own[id.index()].zero();
            }
        }
        // Old-time snapshot of the finer level's prolongation sources,
        // taken before this level moves off the old time.
        if li + 1 < nlv {
            state.snapshot_level(grid, li + 1);
        }
        for (s, &w) in weights.iter().enumerate() {
            // Heun stage 1 evaluates at the substep's start, stage 2 at
            // its end (u* lives at u0 + units).
            let u_fill = if s == 0 { u0 } else { u0 + units };
            backend.fill_level(grid, state, li, theta_at(u_fill), bc);
            backend.sweep_level(grid, &ids);
            let (cfg, engine) = backend.cfg_engine();
            let sw = engine.sweep();
            if refluxing {
                for &id in &ids {
                    let store = &sw.flux_stores[id.index()];
                    state.accum_own[id.index()].add_scaled(store, w * dt);
                    state.accum_par[id.index()].add_scaled(store, w * dt);
                }
            }
            match cfg.time_scheme {
                TimeScheme::ForwardEuler => {
                    for &id in &ids {
                        let node = grid.block_mut(id);
                        floored += fe_update_block(
                            &cfg.physics,
                            node.field_mut(),
                            &sw.rhs[id.index()],
                            dt,
                        );
                    }
                }
                TimeScheme::SspRk2 if s == 0 => {
                    for &id in &ids {
                        let node = grid.block_mut(id);
                        floored += rk2_stage1_block(
                            &cfg.physics,
                            node.field_mut(),
                            &sw.rhs[id.index()],
                            &mut sw.stage[id.index()],
                            dt,
                        );
                    }
                }
                TimeScheme::SspRk2 => {
                    for &id in &ids {
                        let node = grid.block_mut(id);
                        floored += rk2_stage2_block(
                            &cfg.physics,
                            node.field_mut(),
                            &sw.rhs[id.index()],
                            &sw.stage[id.index()],
                            dt,
                        );
                    }
                }
            }
        }
        metrics.incr("subcycle.substeps", 1);
        metrics.incr("subcycle.cell_updates", ids.len() as u64 * interior_cells(grid));
    }
    if li + 1 < nlv {
        if refluxing {
            for &id in &state.level_ids[li + 1] {
                state.accum_par[id.index()].zero();
            }
        }
        let child_units = state.units[li + 1];
        for k in 0..units / child_units {
            floored += advance_level(
                backend,
                grid,
                state,
                li + 1,
                u0 + k * child_units,
                u0,
                units,
                dt0,
                bc,
            );
        }
        if refluxing {
            backend.pre_reflux(grid, state, li);
            let _span = metrics.span(phase::REFLUX);
            let owned = |id: BlockId| backend.is_owned(id);
            let n = reflux_state(
                grid,
                &state.accum_own,
                &state.accum_par,
                state.levels[li],
                &owned,
            );
            metrics.incr("subcycle.refluxed_cells", n as u64);
        }
    }
    floored
}

impl<const D: usize, P: Physics> SubcycleBackend<D> for Stepper<D, P> {
    type Phys = P;

    fn cfg_engine(&mut self) -> (&SolverConfig<P>, &mut SweepEngine<D>) {
        self.cfg_engine_mut()
    }

    fn level_ids(&self, grid: &BlockGrid<D>, level: u8) -> Vec<BlockId> {
        grid.block_ids()
            .into_iter()
            .filter(|&id| grid.block(id).key().level == level)
            .collect()
    }

    fn fill_level(
        &mut self,
        grid: &mut BlockGrid<D>,
        state: &SubcycleState<D>,
        li: usize,
        theta: f64,
        bc: Option<&BcFn<D>>,
    ) {
        let metrics = self.metrics().clone();
        let _span = metrics.span(phase::GHOST_FILL);
        state.with_lerped_sources(grid, li, theta, |grid, plan| match bc {
            Some(f) => plan.fill_with(grid, f),
            None => plan.fill(grid),
        });
    }

    fn sweep_level(&mut self, grid: &BlockGrid<D>, ids: &[BlockId]) {
        let mut evals = 0usize;
        {
            let (cfg, engine) = self.cfg_engine_mut();
            let _span = cfg.metrics.span(phase::FLUX);
            let sw = engine.sweep();
            for &id in ids {
                let node = grid.block(id);
                let h = grid
                    .layout()
                    .cell_size(node.key().level, grid.params().block_dims);
                let store = if cfg.refluxing {
                    Some(&mut sw.flux_stores[id.index()])
                } else {
                    None
                };
                evals += compute_rhs_block_fluxes(
                    &cfg.physics,
                    cfg.scheme,
                    node.field(),
                    h,
                    &mut sw.rhs[id.index()],
                    sw.prim_scratch,
                    store,
                );
            }
        }
        self.flux_evals += evals;
    }

    fn level_rates(&mut self, grid: &BlockGrid<D>, state: &SubcycleState<D>) -> Vec<f64> {
        let mut rates = vec![0.0f64; state.levels().len()];
        let mut scanned = 0u64;
        for (li, rate) in rates.iter_mut().enumerate() {
            for &id in state.ids(li) {
                let node = grid.block(id);
                let h = grid
                    .layout()
                    .cell_size(node.key().level, grid.params().block_dims);
                *rate = rate.max(max_rate_block(self.physics(), node.field(), h));
                scanned += 1;
            }
        }
        self.engine_mut().note_rate_scans(scanned);
        rates
    }
}

/// Hierarchy-advancing entry points on the serial stepper; the
/// shared-memory and distributed analogues live in `ablock-par`.
impl<const D: usize, P: Physics> Stepper<D, P> {
    /// Largest stable coarsest-level `dt₀` for subcycling (one scan of
    /// every block; see [`max_dt0`]).
    pub fn max_dt0(&mut self, grid: &BlockGrid<D>) -> f64 {
        let mut sub = std::mem::take(self.sub_state());
        let dt0 = max_dt0(self, grid, &mut sub);
        *self.sub_state() = sub;
        dt0
    }

    /// One subcycled hierarchy advance by `dt0` (see [`step_subcycled`]).
    pub fn step_subcycled(&mut self, grid: &mut BlockGrid<D>, dt0: f64, bc: Option<&BcFn<D>>) {
        let mut sub = std::mem::take(self.sub_state());
        let floored = step_subcycled(self, grid, &mut sub, dt0, bc);
        self.floored_cells += floored;
        *self.sub_state() = sub;
    }

    /// Mode-dispatching stable step size: the global CFL reduction under
    /// [`TimeStepMode::Global`], the coarsest-level `dt₀` under
    /// [`TimeStepMode::Subcycled`]. Installs the config's immersed
    /// geometry first so the CFL scan sees the same solid mask the step
    /// will (solid cells never constrain `dt`).
    pub fn stable_dt(&mut self, grid: &mut BlockGrid<D>) -> f64 {
        grid.ensure_geometry(&self.config().geometry);
        match self.config().time_step_mode {
            TimeStepMode::Global => self.max_dt(grid),
            TimeStepMode::Subcycled => self.max_dt0(grid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::Euler;
    use crate::kernel::Scheme;
    use crate::stepper::total_conserved;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_core::ops::ProlongOrder;

    fn periodic_grid_1d(nblocks: i64, m: i64) -> BlockGrid<1> {
        BlockGrid::new(
            RootLayout::unit([nblocks], Boundary::Periodic),
            GridParams::new([m], 2, 3, 3),
        )
    }

    fn set_sine_density(grid: &mut BlockGrid<1>, e: &Euler<1>, v0: f64) {
        let m = grid.params().block_dims;
        let layout = grid.layout().clone();
        for id in grid.block_ids() {
            let key = grid.block(id).key();
            let e = e.clone();
            grid.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, m, c)[0];
                let w = [1.0 + 0.2 * (2.0 * std::f64::consts::PI * x).sin(), v0, 1.0];
                e.prim_to_cons(&w, u);
            });
        }
    }

    fn interiors(grid: &BlockGrid<1>) -> Vec<f64> {
        grid.block_ids()
            .iter()
            .flat_map(|&id| {
                let f = grid.block(id).field();
                extract_box(f, f.shape().interior_box())
            })
            .collect()
    }

    #[test]
    fn single_level_subcycled_is_bitwise_global() {
        // With one level the sub-plan is the full plan, θ never differs
        // from its endpoints, and no reflux runs: the subcycled driver
        // must reduce to the global path bit for bit.
        let run = |mode: TimeStepMode| -> Vec<f64> {
            let e = Euler::<1>::new(1.4);
            let mut g = periodic_grid_1d(4, 8);
            set_sine_density(&mut g, &e, 0.7);
            let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_refluxing(true)
                .with_time_step_mode(mode);
            let mut st = Stepper::new(cfg);
            for _ in 0..8 {
                let dt = st.stable_dt(&mut g);
                st.step(&mut g, dt, None);
            }
            interiors(&g)
        };
        let global = run(TimeStepMode::Global);
        let sub = run(TimeStepMode::Subcycled);
        assert_eq!(global.len(), sub.len());
        for (a, b) in global.iter().zip(&sub) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn subcycled_refluxed_run_conserves_to_roundoff() {
        // Two-level advection: per-level flux accumulation + reflux_state
        // must keep Σρ and ΣE at roundoff, while the refluxing-off
        // control shows the coarse-fine defect ("teeth").
        let run = |reflux: bool| -> (f64, f64) {
            let e = Euler::<1>::new(1.4);
            let mut g = periodic_grid_1d(4, 8);
            set_sine_density(&mut g, &e, 0.5);
            let id = g.find(BlockKey::new(0, [1])).unwrap();
            g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
            let m0 = total_conserved(&g, 0);
            let e0 = total_conserved(&g, 2);
            let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_refluxing(reflux)
                .with_time_step_mode(TimeStepMode::Subcycled);
            let mut st = Stepper::new(cfg);
            st.run_until(&mut g, 0.0, 0.1, None);
            (
                (total_conserved(&g, 0) - m0).abs() / m0.abs(),
                (total_conserved(&g, 2) - e0).abs() / e0.abs(),
            )
        };
        let (m_with, e_with) = run(true);
        let (m_without, _) = run(false);
        assert!(m_with < 1e-13, "refluxed mass drift {m_with}");
        assert!(e_with < 1e-13, "refluxed energy drift {e_with}");
        assert!(m_without > 1e-8, "control must show the defect: {m_without}");
    }

    #[test]
    fn subcycled_fine_level_takes_halved_steps() {
        let e = Euler::<1>::new(1.4);
        let mut g = periodic_grid_1d(4, 8);
        set_sine_density(&mut g, &e, 0.5);
        let id = g.find(BlockKey::new(0, [1])).unwrap();
        g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        let metrics = ablock_obs::Metrics::recording();
        let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
            .with_refluxing(true)
            .with_time_step_mode(TimeStepMode::Subcycled)
            .with_metrics(metrics.clone());
        let mut st = Stepper::new(cfg);
        let dt0 = st.stable_dt(&mut g);
        st.step(&mut g, dt0, None);
        let s = metrics.snapshot();
        // 1 coarse substep + 2 fine substeps per outer step.
        assert_eq!(s.counter("subcycle.steps"), 1);
        assert_eq!(s.counter("subcycle.substeps"), 3);
        assert_eq!(s.spans[level_span(0)].count, 1);
        assert_eq!(s.spans[level_span(1)].count, 2);
        // 3 coarse + 2 fine blocks of 8 cells: 3·8 + 2·(2·8) = 56 cell
        // updates versus 5·8·2 = 80 at a uniform finest dt.
        assert_eq!(s.counter("subcycle.cell_updates"), 56);
        assert_eq!(s.counter("subcycle.cell_updates_uniform"), 80);
        // dt0 was computed by one scan of every block, not one per level
        // per substep.
        assert_eq!(s.counter("engine.rate_block_scans"), 5);
        assert_eq!(st.engine().stats().rate_block_scans, 5);
    }

    #[test]
    fn subcycled_survives_adapt_and_matches_accuracy() {
        // Adapt mid-run: the epoch-keyed SubcycleState must rebuild, and
        // the subcycled solution must stay close to the global one (the
        // time interpolation is O(dt²), same order as the scheme).
        let e = Euler::<1>::new(1.4);
        let run = |mode: TimeStepMode| -> Vec<f64> {
            let mut g = periodic_grid_1d(4, 8);
            set_sine_density(&mut g, &e, 0.5);
            let id = g.find(BlockKey::new(0, [1])).unwrap();
            g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
            let cfg = SolverConfig::new(e.clone(), Scheme::muscl_rusanov())
                .with_refluxing(true)
                .with_time_step_mode(mode);
            let mut st = Stepper::new(cfg);
            st.run_until(&mut g, 0.0, 0.05, None);
            let id = g.find(BlockKey::new(0, [3])).unwrap();
            g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
            st.run_until(&mut g, 0.05, 0.1, None);
            interiors(&g)
        };
        let global = run(TimeStepMode::Global);
        let sub = run(TimeStepMode::Subcycled);
        let err: f64 = global
            .iter()
            .zip(&sub)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 5e-3, "subcycled deviates too much: {err}");
        assert!(err > 0.0, "subcycled must actually take different steps");
    }
}

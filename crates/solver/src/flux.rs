//! Approximate Riemann solvers.
//!
//! Two classics with very different dissipation/robustness trade-offs:
//!
//! * **Rusanov** (local Lax–Friedrichs) — maximally simple and robust; the
//!   default for the MHD runs (BATS-R-US shipped exactly this option for
//!   hard solar-wind states);
//! * **HLL** — two-wave solver; noticeably sharper on contacts moving with
//!   the flow, still positivity-friendly.
//!
//! Both operate on *conserved* interface states produced by the
//! reconstruction layer.

use crate::physics::{Physics, MAX_VARS, ROW_CHUNK};

/// Which approximate Riemann solver the kernel uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Riemann {
    /// Local Lax–Friedrichs.
    Rusanov,
    /// Harten–Lax–van Leer two-wave solver.
    Hll,
}

/// Numerical interface flux along `dir` from conserved left/right states.
pub fn numerical_flux<P: Physics>(
    phys: &P,
    riemann: Riemann,
    ul: &[f64],
    ur: &[f64],
    dir: usize,
    out: &mut [f64],
) {
    let n = phys.nvar();
    let mut fl = [0.0; MAX_VARS];
    let mut fr = [0.0; MAX_VARS];
    phys.flux(ul, dir, &mut fl[..n]);
    phys.flux(ur, dir, &mut fr[..n]);
    match riemann {
        Riemann::Rusanov => {
            let s = phys.max_speed(ul, dir).max(phys.max_speed(ur, dir));
            for v in 0..n {
                out[v] = 0.5 * (fl[v] + fr[v]) - 0.5 * s * (ur[v] - ul[v]);
            }
        }
        Riemann::Hll => {
            let (ll, lh) = phys.signal_speeds(ul, dir);
            let (rl, rh) = phys.signal_speeds(ur, dir);
            let sl = ll.min(rl).min(0.0);
            let sr = lh.max(rh).max(0.0);
            if sl >= 0.0 {
                out[..n].copy_from_slice(&fl[..n]);
            } else if sr <= 0.0 {
                out[..n].copy_from_slice(&fr[..n]);
            } else {
                let inv = 1.0 / (sr - sl);
                for v in 0..n {
                    out[v] = (sr * fl[v] - sl * fr[v] + sl * sr * (ur[v] - ul[v])) * inv;
                }
            }
        }
    }
}

/// Row-batched [`numerical_flux`] over at most [`ROW_CHUNK`] interfaces.
/// `ul`, `ur` and `out` are variable-major slabs sharing stride `s`
/// (variable `v` of lane `k` at `[v * s + k]`). Rusanov runs as stride-1
/// elementwise loops over the row; HLL gathers each lane through the scalar
/// path (its three-way upwind branch doesn't row-batch). Both paths are
/// bitwise identical to calling [`numerical_flux`] once per lane.
#[allow(clippy::too_many_arguments)]
pub fn numerical_flux_rows<P: Physics>(
    phys: &P,
    riemann: Riemann,
    ul: &[f64],
    ur: &[f64],
    dir: usize,
    out: &mut [f64],
    s: usize,
    lanes: usize,
) {
    debug_assert!(lanes <= ROW_CHUNK);
    let n = phys.nvar();
    match riemann {
        Riemann::Rusanov => {
            let mut fl = [0.0; MAX_VARS * ROW_CHUNK];
            let mut fr = [0.0; MAX_VARS * ROW_CHUNK];
            let mut sl = [0.0; ROW_CHUNK];
            let mut sr = [0.0; ROW_CHUNK];
            phys.flux_speed_rows(ul, s, dir, &mut fl, ROW_CHUNK, &mut sl, lanes);
            phys.flux_speed_rows(ur, s, dir, &mut fr, ROW_CHUNK, &mut sr, lanes);
            for v in 0..n {
                let flv = &fl[v * ROW_CHUNK..v * ROW_CHUNK + lanes];
                let frv = &fr[v * ROW_CHUNK..v * ROW_CHUNK + lanes];
                for k in 0..lanes {
                    let a = sl[k].max(sr[k]);
                    out[v * s + k] =
                        0.5 * (flv[k] + frv[k]) - 0.5 * a * (ur[v * s + k] - ul[v * s + k]);
                }
            }
        }
        Riemann::Hll => {
            let mut ulc = [0.0; MAX_VARS];
            let mut urc = [0.0; MAX_VARS];
            let mut fc = [0.0; MAX_VARS];
            for k in 0..lanes {
                for v in 0..n {
                    ulc[v] = ul[v * s + k];
                    urc[v] = ur[v * s + k];
                }
                numerical_flux(phys, riemann, &ulc[..n], &urc[..n], dir, &mut fc[..n]);
                for v in 0..n {
                    out[v * s + k] = fc[v];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::Euler;

    fn cons(e: &Euler<1>, rho: f64, v: f64, p: f64) -> [f64; 3] {
        let mut u = [0.0; 3];
        e.prim_to_cons(&[rho, v, p], &mut u);
        u
    }

    #[test]
    fn consistency_equal_states() {
        // F(u, u) = F(u) for any consistent numerical flux.
        let e = Euler::<1>::new(1.4);
        let u = cons(&e, 1.3, 0.4, 0.9);
        let mut exact = [0.0; 3];
        e.flux(&u, 0, &mut exact);
        for r in [Riemann::Rusanov, Riemann::Hll] {
            let mut f = [0.0; 3];
            numerical_flux(&e, r, &u, &u, 0, &mut f);
            for v in 0..3 {
                assert!((f[v] - exact[v]).abs() < 1e-13, "{r:?} var {v}");
            }
        }
    }

    #[test]
    fn rusanov_adds_dissipation_proportional_to_jump() {
        let e = Euler::<1>::new(1.4);
        let ul = cons(&e, 1.0, 0.0, 1.0);
        let ur = cons(&e, 0.5, 0.0, 1.0);
        let mut f = [0.0; 3];
        numerical_flux(&e, Riemann::Rusanov, &ul, &ur, 0, &mut f);
        // central average of mass flux is 0; dissipation pushes mass
        // rightward (toward low density): f_rho = -0.5 s (rho_r - rho_l) > 0
        assert!(f[0] > 0.0);
    }

    #[test]
    fn hll_upwinds_supersonic_flow() {
        // Supersonic rightward flow: HLL must return the pure left flux.
        let e = Euler::<1>::new(1.4);
        let ul = cons(&e, 1.0, 5.0, 1.0);
        let ur = cons(&e, 0.3, 5.0, 0.4);
        let mut f = [0.0; 3];
        numerical_flux(&e, Riemann::Hll, &ul, &ur, 0, &mut f);
        let mut exact = [0.0; 3];
        e.flux(&ul, 0, &mut exact);
        for v in 0..3 {
            assert!((f[v] - exact[v]).abs() < 1e-13);
        }
        // and the mirrored case
        let ul2 = cons(&e, 0.3, -5.0, 0.4);
        let ur2 = cons(&e, 1.0, -5.0, 1.0);
        numerical_flux(&e, Riemann::Hll, &ul2, &ur2, 0, &mut f);
        e.flux(&ur2, 0, &mut exact);
        for v in 0..3 {
            assert!((f[v] - exact[v]).abs() < 1e-13);
        }
    }

    #[test]
    fn hll_less_dissipative_than_rusanov_on_contact() {
        // pure contact: velocity/pressure equal, density jump
        let e = Euler::<1>::new(1.4);
        let ul = cons(&e, 1.0, 0.1, 1.0);
        let ur = cons(&e, 0.125, 0.1, 1.0);
        let mut fr_ = [0.0; 3];
        let mut fh = [0.0; 3];
        numerical_flux(&e, Riemann::Rusanov, &ul, &ur, 0, &mut fr_);
        numerical_flux(&e, Riemann::Hll, &ul, &ur, 0, &mut fh);
        // exact contact mass flux = rho*u upwinded; compare deviation from
        // the upwind (left) physical flux
        let mut exact = [0.0; 3];
        e.flux(&ul, 0, &mut exact);
        let dev_r = (fr_[0] - exact[0]).abs();
        let dev_h = (fh[0] - exact[0]).abs();
        assert!(dev_h < dev_r, "HLL {dev_h} should beat Rusanov {dev_r}");
    }

    #[test]
    fn mhd_flux_consistency() {
        use crate::mhd::IdealMhd;
        let m = IdealMhd::new(5.0 / 3.0);
        let w = [1.0, 0.2, -0.1, 0.3, 0.8, -0.6, 0.2, 0.95];
        let mut u = [0.0; 8];
        m.prim_to_cons(&w, &mut u);
        let mut exact = [0.0; 8];
        let mut f = [0.0; 8];
        for dir in 0..3 {
            m.flux(&u, dir, &mut exact);
            for r in [Riemann::Rusanov, Riemann::Hll] {
                numerical_flux(&m, r, &u, &u, dir, &mut f);
                for v in 0..8 {
                    assert!((f[v] - exact[v]).abs() < 1e-12, "{r:?} dir {dir} var {v}");
                }
            }
        }
    }
}

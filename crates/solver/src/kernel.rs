//! Block update kernels — the hot loops of the whole repository.
//!
//! Everything Fig. 5 of the paper measures happens here: a block is a
//! regular array with ghost layers, so the kernel runs dense loops with
//! unit-stride inner dimension, no indirection, and all neighbor data
//! already resident in the ghost cells. Compare `ablock_celltree::fv`,
//! which must traverse the tree per face.
//!
//! The kernel is a dimension-by-dimension finite-volume update:
//! primitives are precomputed over the ghosted box once, each interface is
//! reconstructed (first-order or MUSCL), fed to the chosen approximate
//! Riemann solver, and accumulated into the RHS. Ideal MHD additionally
//! receives the Powell 8-wave `−(∇·B)(0, B, u, u·B)` source evaluated with
//! central differences.

use ablock_core::field::FieldBlock;
use ablock_core::index::{Face, IVec};

use crate::flux::{numerical_flux, numerical_flux_rows, Riemann};
use crate::physics::{Physics, MAX_VARS, ROW_CHUNK};
use crate::recon::{limited_slope, Recon};

/// Full spatial scheme: reconstruction plus Riemann solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scheme {
    /// Interface reconstruction.
    pub recon: Recon,
    /// Approximate Riemann solver.
    pub riemann: Riemann,
}

impl Scheme {
    /// Second-order MUSCL/minmod + Rusanov — the workhorse configuration.
    pub fn muscl_rusanov() -> Self {
        Scheme { recon: Recon::Muscl(crate::recon::Limiter::Minmod), riemann: Riemann::Rusanov }
    }

    /// First-order Godunov + Rusanov (one ghost layer suffices).
    pub fn first_order() -> Self {
        Scheme { recon: Recon::FirstOrder, riemann: Riemann::Rusanov }
    }
}

/// Interface fluxes recorded on the six faces of one block, used by the
/// refluxing pass (`crate::reflux`) to make coarse/fine interfaces exactly
/// conservative.
///
/// Layout per face: `nvar` values per interface cell, interface cells in
/// row-major order over the transverse axes (lowest axis fastest).
#[derive(Clone, Debug)]
pub struct FaceFluxStore<const D: usize> {
    nvar: usize,
    dims: IVec<D>,
    faces: Vec<Vec<f64>>,
}

impl<const D: usize> FaceFluxStore<D> {
    /// Zeroed store for a block of `dims` interior cells.
    pub fn new(dims: IVec<D>, nvar: usize) -> Self {
        let mut faces = Vec::with_capacity(2 * D);
        for fi in 0..2 * D {
            let dir = fi / 2;
            let cells: i64 = (0..D).filter(|&a| a != dir).map(|a| dims[a]).product();
            faces.push(vec![0.0; cells as usize * nvar]);
        }
        FaceFluxStore { nvar, dims, faces }
    }

    /// Linear offset of the interface cell with transverse coordinates
    /// taken from `c` (the normal component of `c` is ignored).
    #[inline]
    pub fn offset(&self, face: Face, c: IVec<D>) -> usize {
        let dir = face.dim as usize;
        let mut idx = 0i64;
        let mut stride = 1i64;
        for a in 0..D {
            if a == dir {
                continue;
            }
            idx += c[a] * stride;
            stride *= self.dims[a];
        }
        idx as usize * self.nvar
    }

    /// Flux vector of one interface cell on one face.
    pub fn flux(&self, face: Face, c: IVec<D>) -> &[f64] {
        let o = self.offset(face, c);
        &self.faces[face.index()][o..o + self.nvar]
    }

    /// Mutable flux vector of one interface cell.
    pub fn flux_mut(&mut self, face: Face, c: IVec<D>) -> &mut [f64] {
        let o = self.offset(face, c);
        &mut self.faces[face.index()][o..o + self.nvar]
    }

    /// All flux values of one face.
    pub fn face(&self, face: Face) -> &[f64] {
        &self.faces[face.index()]
    }

    /// All flux values of one face, mutably (the distributed subcycled
    /// path writes fetched fine-side accumulator faces here).
    pub fn face_mut(&mut self, face: Face) -> &mut [f64] {
        &mut self.faces[face.index()]
    }

    /// Reset every face to zero (accumulator reuse between substeps).
    pub fn zero(&mut self) {
        for f in &mut self.faces {
            f.fill(0.0);
        }
    }

    /// Accumulate `w * other` face-by-face — the stage-weighted sum that
    /// turns per-stage instantaneous fluxes into a time-integrated face
    /// flux (`Σ_s w_s Δt F_s`).
    pub fn add_scaled(&mut self, other: &FaceFluxStore<D>, w: f64) {
        debug_assert_eq!(self.dims, other.dims);
        debug_assert_eq!(self.nvar, other.nvar);
        for (dst, src) in self.faces.iter_mut().zip(&other.faces) {
            for (x, y) in dst.iter_mut().zip(src) {
                *x += w * y;
            }
        }
    }
}

/// Convert the conserved field to primitives over the whole ghosted box
/// into `prim` (same variable-major layout and plane stride as the field's
/// storage), one x-contiguous row at a time. Cells whose density is
/// non-positive (unfilled ghost corners) are skipped.
fn primitives<const D: usize, P: Physics>(phys: &P, field: &FieldBlock<D>, prim: &mut Vec<f64>) {
    prim.resize(field.as_slice().len(), 0.0);
    let shape = *field.shape();
    let ps = shape.plane_stride();
    let u = field.as_slice();
    let gb = shape.ghosted_box();
    let mut rowbox = gb;
    rowbox.hi[0] = gb.lo[0] + 1;
    let row_len = (gb.hi[0] - gb.lo[0]) as usize;
    for rc in rowbox.iter() {
        let base = shape.lin(rc);
        phys.cons_to_prim_rows(&u[base..], ps, &mut prim[base..], ps, row_len);
    }
}

/// Accumulate `∂u/∂t` for one block into `rhs` (interior cells only; `rhs`
/// must have the same shape as `field`). Ghosts of `field` must be filled.
/// `h` is the physical cell size of this block's level. Returns the number
/// of interface flux evaluations (one per interface per direction).
pub fn compute_rhs_block<const D: usize, P: Physics>(
    phys: &P,
    scheme: Scheme,
    field: &FieldBlock<D>,
    h: [f64; D],
    rhs: &mut FieldBlock<D>,
    prim_scratch: &mut Vec<f64>,
) -> usize {
    compute_rhs_block_fluxes(phys, scheme, field, h, rhs, prim_scratch, None)
}

/// [`compute_rhs_block`] with optional recording of the block-face
/// interface fluxes (needed by the refluxing pass).
#[allow(clippy::too_many_arguments)]
pub fn compute_rhs_block_fluxes<const D: usize, P: Physics>(
    phys: &P,
    scheme: Scheme,
    field: &FieldBlock<D>,
    h: [f64; D],
    rhs: &mut FieldBlock<D>,
    prim_scratch: &mut Vec<f64>,
    mut flux_store: Option<&mut FaceFluxStore<D>>,
) -> usize {
    let n = phys.nvar();
    debug_assert_eq!(field.shape(), rhs.shape());
    debug_assert!(field.shape().nghost >= scheme.recon.required_ghosts());
    let shape = *field.shape();
    let strides = shape.strides();
    let ps = shape.plane_stride();
    // Immersed-solid handling (DESIGN.md §18): when the shape carries a
    // mask plane, interfaces between two solid cells get zero flux and
    // solid/fluid interfaces get a reflective-wall flux built by mirroring
    // the fluid state. The maskless path is bitwise untouched.
    let masked = shape.mask_plane;
    let mask: &[f64] = if masked { field.mask().expect("mask plane") } else { &[] };
    let vecs: Vec<[usize; 3]> = if masked { phys.vector_components() } else { Vec::new() };

    // zero the RHS interior, plane by plane (x rows are contiguous in
    // every variable plane)
    {
        let ib = shape.interior_box();
        let mut rowbox = ib;
        rowbox.hi[0] = ib.lo[0] + 1;
        let row_len = (ib.hi[0] - ib.lo[0]) as usize;
        let rhs_s = rhs.as_mut_slice();
        for rc in rowbox.iter() {
            let i0 = shape.lin(rc);
            for v in 0..n {
                rhs_s[v * ps + i0..v * ps + i0 + row_len].fill(0.0);
            }
        }
    }

    primitives(phys, field, prim_scratch);
    // MUSCL: the scratch doubles as a slope plane (second half). Each
    // cell's limited slope is computed once per direction and reused by
    // both interfaces that touch the cell — the inputs are exactly the
    // per-interface stencil differences, so results are bitwise identical
    // to recomputing them at each interface.
    let field_len = field.as_slice().len();
    if matches!(scheme.recon, Recon::Muscl(_)) {
        prim_scratch.resize(2 * field_len, 0.0);
    }
    let split = field_len.min(prim_scratch.len());
    let (prim, slope) = prim_scratch.split_at_mut(split);
    let prim: &[f64] = prim;
    let rhs_s = rhs.as_mut_slice();

    // Variable-major row-chunk slabs: variable `v` of lane `k` lives at
    // `[v * ROW_CHUNK + k]`. Lane `k` is the interface whose RIGHT cell is
    // the k-th cell of the current x-row chunk.
    let mut wl = [0.0; MAX_VARS * ROW_CHUNK];
    let mut wr = [0.0; MAX_VARS * ROW_CHUNK];
    let mut ul = [0.0; MAX_VARS * ROW_CHUNK];
    let mut ur = [0.0; MAX_VARS * ROW_CHUNK];
    let mut f = [0.0; MAX_VARS * ROW_CHUNK];
    let mut nflux = 0usize;

    for dir in 0..D {
        let step = strides[dir] as usize;
        let inv_h = 1.0 / h[dir];
        let m_dir = shape.dims[dir];
        // interface index i in [0, m]: between cells i-1 and i along dir
        let mut ibox = shape.interior_box();
        ibox.hi[dir] += 1;
        // One x-row at a time. For dir == 0 the row spans the m+1 interface
        // positions; for transverse sweeps every lane of a row shares the
        // interface index rc[dir]. Either way both the left and the right
        // cell runs are x-contiguous, so every load below is stride-1.
        let mut rowbox = ibox;
        rowbox.hi[0] = ibox.lo[0] + 1;
        let row_len = (ibox.hi[0] - ibox.lo[0]) as usize;
        if let Recon::Muscl(lim) = scheme.recon {
            // fill the slope plane for this direction: every cell an
            // interface extrapolates from (interior grown by one along
            // `dir`), one x-row at a time
            let mut sbox = shape.interior_box();
            sbox.lo[dir] -= 1;
            sbox.hi[dir] += 1;
            let mut srowbox = sbox;
            srowbox.hi[0] = sbox.lo[0] + 1;
            let srow_len = (sbox.hi[0] - sbox.lo[0]) as usize;
            for rc in srowbox.iter() {
                let b = shape.lin(rc);
                for v in 0..n {
                    let p = &prim[v * ps..];
                    let s = &mut slope[v * ps..];
                    for j in b..b + srow_len {
                        s[j] = limited_slope(lim, p[j] - p[j - step], p[j + step] - p[j]);
                    }
                }
                if masked {
                    // First order at walls: a cell whose slope stencil
                    // touches a solid cell extrapolates constantly. The
                    // check uses the ghost masks too, so neighboring blocks
                    // make the bitwise-same decision at shared interfaces.
                    for j in b..b + srow_len {
                        if mask[j - step] != 0.0 || mask[j] != 0.0 || mask[j + step] != 0.0 {
                            for v in 0..n {
                                slope[v * ps + j] = 0.0;
                            }
                        }
                    }
                }
            }
        }
        for rc in rowbox.iter() {
            let base = shape.lin(rc);
            let mut k0 = 0usize;
            while k0 < row_len {
                let lanes = (row_len - k0).min(ROW_CHUNK);
                let ic0 = base + k0; // right-cell offset of lane 0
                let im0 = ic0 - step;
                match scheme.recon {
                    Recon::FirstOrder => {
                        phys.prim_to_cons_rows(&prim[im0..], ps, &mut ul, ROW_CHUNK, lanes);
                        phys.prim_to_cons_rows(&prim[ic0..], ps, &mut ur, ROW_CHUNK, lanes);
                    }
                    Recon::Muscl(_) => {
                        // uL extrapolates from cell i-1 (offset im0+k), uR
                        // from cell i (offset ic0+k); both reads stride-1
                        for v in 0..n {
                            let p = &prim[v * ps..];
                            let s = &slope[v * ps..];
                            for k in 0..lanes {
                                wl[v * ROW_CHUNK + k] = p[im0 + k] + 0.5 * s[im0 + k];
                                wr[v * ROW_CHUNK + k] = p[ic0 + k] - 0.5 * s[ic0 + k];
                            }
                        }
                        phys.prim_to_cons_rows(&wl, ROW_CHUNK, &mut ul, ROW_CHUNK, lanes);
                        phys.prim_to_cons_rows(&wr, ROW_CHUNK, &mut ur, ROW_CHUNK, lanes);
                    }
                }
                numerical_flux_rows(
                    phys,
                    scheme.riemann,
                    &ul,
                    &ur,
                    dir,
                    &mut f,
                    ROW_CHUNK,
                    lanes,
                );
                nflux += lanes;

                if masked {
                    // Override the lanes that touch a solid cell BEFORE the
                    // flux-store recording and the RHS accumulation, so the
                    // refluxing pass sees wall fluxes too. Solid/solid
                    // interfaces carry nothing; solid/fluid interfaces get
                    // the reflective-wall flux from the mirrored fluid
                    // state (the fluid-side reconstruction is first-order
                    // here because its slope was zeroed above), whose mass
                    // and energy components are exactly ±0.0 — only the
                    // normal momentum (wall pressure) survives.
                    for k in 0..lanes {
                        let solid_l = mask[im0 + k] != 0.0;
                        let solid_r = mask[ic0 + k] != 0.0;
                        if !solid_l && !solid_r {
                            continue;
                        }
                        if solid_l && solid_r {
                            for v in 0..n {
                                f[v * ROW_CHUNK + k] = 0.0;
                            }
                            continue;
                        }
                        let slab = if solid_l { &ur } else { &ul };
                        let mut uf = [0.0; MAX_VARS];
                        for (v, x) in uf[..n].iter_mut().enumerate() {
                            *x = slab[v * ROW_CHUNK + k];
                        }
                        let mut um = uf;
                        for t in &vecs {
                            um[t[dir]] = -um[t[dir]];
                        }
                        let mut fw = [0.0; MAX_VARS];
                        if solid_l {
                            numerical_flux(phys, scheme.riemann, &um[..n], &uf[..n], dir, &mut fw[..n]);
                        } else {
                            numerical_flux(phys, scheme.riemann, &uf[..n], &um[..n], dir, &mut fw[..n]);
                        }
                        for v in 0..n {
                            f[v * ROW_CHUNK + k] = fw[v];
                        }
                    }
                }

                if let Some(store) = flux_store.as_deref_mut() {
                    if dir == 0 {
                        // interface index of lane k is k0 + k
                        if k0 == 0 {
                            let fm = store.flux_mut(Face::new(0, false), rc);
                            for (v, x) in fm.iter_mut().enumerate() {
                                *x = f[v * ROW_CHUNK];
                            }
                        }
                        if k0 + lanes == row_len {
                            let fm = store.flux_mut(Face::new(0, true), rc);
                            for (v, x) in fm.iter_mut().enumerate() {
                                *x = f[v * ROW_CHUNK + lanes - 1];
                            }
                        }
                    } else {
                        let i = rc[dir];
                        if i == 0 || i == m_dir {
                            let face = Face::new(dir, i == m_dir);
                            for k in 0..lanes {
                                let mut c = rc;
                                c[0] = (k0 + k) as i64;
                                let fm = store.flux_mut(face, c);
                                for (v, x) in fm.iter_mut().enumerate() {
                                    *x = f[v * ROW_CHUNK + k];
                                }
                            }
                        }
                    }
                }

                // Accumulate += into right cells before -= into left cells:
                // per (cell, var) slot this preserves the interface-ascending
                // order of the scalar kernel (gain from the left interface,
                // then loss to the right one), keeping results bitwise
                // identical.
                if dir == 0 {
                    let n_plus = lanes.min(m_dir as usize - k0); // lanes with i < m
                    let k_minus = usize::from(k0 == 0); // first lane with i > 0
                    for v in 0..n {
                        let fv = &f[v * ROW_CHUNK..v * ROW_CHUNK + lanes];
                        let rp = &mut rhs_s[v * ps + ic0..v * ps + ic0 + lanes];
                        for k in 0..n_plus {
                            rp[k] += fv[k] * inv_h;
                        }
                    }
                    for v in 0..n {
                        let fv = &f[v * ROW_CHUNK..v * ROW_CHUNK + lanes];
                        let rp = &mut rhs_s[v * ps + im0..v * ps + im0 + lanes];
                        for k in k_minus..lanes {
                            rp[k] -= fv[k] * inv_h;
                        }
                    }
                } else {
                    let i = rc[dir];
                    if i < m_dir {
                        for v in 0..n {
                            let fv = &f[v * ROW_CHUNK..v * ROW_CHUNK + lanes];
                            let rp = &mut rhs_s[v * ps + ic0..v * ps + ic0 + lanes];
                            for k in 0..lanes {
                                rp[k] += fv[k] * inv_h;
                            }
                        }
                    }
                    if i > 0 {
                        for v in 0..n {
                            let fv = &f[v * ROW_CHUNK..v * ROW_CHUNK + lanes];
                            let rp = &mut rhs_s[v * ps + im0..v * ps + im0 + lanes];
                            for k in 0..lanes {
                                rp[k] -= fv[k] * inv_h;
                            }
                        }
                    }
                }
                k0 += lanes;
            }
        }
    }

    if phys.powell_source() {
        add_powell_source(phys, field, h, rhs);
    }
    nflux
}

/// Add the Powell 8-wave source `−(∇·B)(0, B, u, u·B)` over the interior,
/// with `∇·B` from central differences (requires one valid ghost layer).
pub fn add_powell_source<const D: usize, P: Physics>(
    phys: &P,
    field: &FieldBlock<D>,
    h: [f64; D],
    rhs: &mut FieldBlock<D>,
) {
    let [ibx, iby, ibz] = phys.b_indices().expect("powell source requires B field");
    let b_idx = [ibx, iby, ibz];
    let shape = *field.shape();
    let strides = shape.strides();
    let ps = shape.plane_stride();
    let ie = phys.nvar() - 1;
    let u = field.as_slice();
    let rhs_s = rhs.as_mut_slice();
    let ib = shape.interior_box();
    let mut rowbox = ib;
    rowbox.hi[0] = ib.lo[0] + 1;
    let row_len = (ib.hi[0] - ib.lo[0]) as usize;
    for rc in rowbox.iter() {
        let base = shape.lin(rc);
        let mut k0 = 0usize;
        while k0 < row_len {
            let lanes = (row_len - k0).min(ROW_CHUNK);
            let i0 = base + k0;
            // central-difference div B, accumulated per direction over the
            // row (stride-1 loads: the ±strides[d] shifts stay x-contiguous)
            let mut divb = [0.0; ROW_CHUNK];
            for (d, &hd) in h.iter().enumerate() {
                let s = strides[d] as usize;
                let bp = &u[b_idx[d] * ps..];
                for (k, db) in divb[..lanes].iter_mut().enumerate() {
                    *db += (bp[i0 + k + s] - bp[i0 + k - s]) / (2.0 * hd);
                }
            }
            for (k, &db) in divb[..lanes].iter().enumerate() {
                if db == 0.0 {
                    continue;
                }
                let i = i0 + k;
                let rho = u[i];
                let v = [u[ps + i] / rho, u[2 * ps + i] / rho, u[3 * ps + i] / rho];
                let b = [u[ibx * ps + i], u[iby * ps + i], u[ibz * ps + i]];
                let vdotb = v[0] * b[0] + v[1] * b[1] + v[2] * b[2];
                for j in 0..3 {
                    rhs_s[(1 + j) * ps + i] -= db * b[j];
                    rhs_s[b_idx[j] * ps + i] -= db * v[j];
                }
                rhs_s[ie * ps + i] -= db * vdotb;
            }
            k0 += lanes;
        }
    }
}

/// Maximum of `Σ_d max_speed_d / h_d` over the interior — the reciprocal
/// of the largest stable forward-Euler `dt` (times the CFL number).
pub fn max_rate_block<const D: usize, P: Physics>(
    phys: &P,
    field: &FieldBlock<D>,
    h: [f64; D],
) -> f64 {
    let shape = *field.shape();
    let ps = shape.plane_stride();
    let u = field.as_slice();
    let mask = field.mask();
    let mut rate: f64 = 0.0;
    let ib = shape.interior_box();
    let mut rowbox = ib;
    rowbox.hi[0] = ib.lo[0] + 1;
    let row_len = (ib.hi[0] - ib.lo[0]) as usize;
    let mut ms = [[0.0; ROW_CHUNK]; 3];
    for rc in rowbox.iter() {
        let base = shape.lin(rc);
        let mut k0 = 0usize;
        while k0 < row_len {
            let lanes = (row_len - k0).min(ROW_CHUNK);
            for (d, m) in ms.iter_mut().enumerate().take(D) {
                phys.max_speed_rows(&u[base + k0..], ps, d, m, lanes);
            }
            for k in 0..lanes {
                // solid cells never constrain dt (their frozen state may
                // be arbitrary, e.g. all-zero)
                if mask.is_some_and(|m| m[base + k0 + k] != 0.0) {
                    continue;
                }
                let mut r = 0.0;
                for d in 0..D {
                    r += ms[d][k] / h[d];
                }
                rate = rate.max(r);
            }
            k0 += lanes;
        }
    }
    rate
}

/// Apply positivity floors over the interior; returns cells clamped.
/// Solid cells are skipped — their frozen state must stay bitwise inert,
/// and floors would otherwise clamp e.g. an all-zero solid interior.
pub fn apply_floors_block<const D: usize, P: Physics>(
    phys: &P,
    field: &mut FieldBlock<D>,
) -> usize {
    let mut count = 0;
    if field.shape().mask_plane {
        let shape = *field.shape();
        let ps = shape.plane_stride();
        let n = shape.nvar;
        let mo = n * ps;
        let data = field.as_mut_slice();
        let mut buf = [0.0; MAX_VARS];
        for c in shape.interior_box().iter() {
            let i = shape.lin(c);
            if data[mo + i] != 0.0 {
                continue;
            }
            for (v, b) in buf[..n].iter_mut().enumerate() {
                *b = data[i + v * ps];
            }
            if phys.apply_floors(&mut buf[..n]) {
                count += 1;
                for (v, &b) in buf[..n].iter().enumerate() {
                    data[i + v * ps] = b;
                }
            }
        }
    } else {
        field.for_each_interior(|_, u| {
            if phys.apply_floors(u) {
                count += 1;
            }
        });
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::Euler;
    use crate::mhd::IdealMhd;
    use ablock_core::field::FieldShape;

    /// Fill an isolated block (ghosts included) with uniform flow.
    fn uniform_block<P: Physics>(phys: &P, shape: FieldShape<2>, w: &[f64]) -> FieldBlock<2> {
        let mut f = FieldBlock::zeros(shape);
        let n = phys.nvar();
        let mut u = vec![0.0; n];
        phys.prim_to_cons(w, &mut u);
        f.for_each_ghosted(|_, cell| cell.copy_from_slice(&u));
        f
    }

    #[test]
    fn uniform_state_has_zero_rhs() {
        // Free-stream preservation: uniform flow must produce rhs = 0.
        let e = Euler::<2>::new(1.4);
        let shape = FieldShape::new([8, 6], 2, 4);
        let field = uniform_block(&e, shape, &[1.0, 0.3, -0.2, 0.8]);
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        for scheme in [Scheme::first_order(), Scheme::muscl_rusanov()] {
            compute_rhs_block(&e, scheme, &field, [0.1, 0.1], &mut rhs, &mut scratch);
            for c in shape.interior_box().iter() {
                for v in 0..4 {
                    assert!(
                        rhs.at(c, v).abs() < 1e-13,
                        "{scheme:?} cell {c:?} var {v}: {}",
                        rhs.at(c, v)
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_mhd_state_preserved_with_powell() {
        let m = IdealMhd::new(5.0 / 3.0);
        let shape = FieldShape::new([6, 6], 2, 8);
        let field = uniform_block(&m, shape, &[1.0, 0.2, 0.1, -0.3, 0.5, 0.4, 0.6, 0.9]);
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        compute_rhs_block(&m, Scheme::muscl_rusanov(), &field, [0.05, 0.05], &mut rhs, &mut scratch);
        for c in shape.interior_box().iter() {
            for v in 0..8 {
                assert!(rhs.at(c, v).abs() < 1e-12, "cell {c:?} var {v}: {}", rhs.at(c, v));
            }
        }
    }

    #[test]
    fn flux_count_matches_interfaces() {
        let e = Euler::<2>::new(1.4);
        let shape = FieldShape::new([4, 4], 2, 4);
        let field = uniform_block(&e, shape, &[1.0, 0.0, 0.0, 1.0]);
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        let n = compute_rhs_block(&e, Scheme::first_order(), &field, [1.0, 1.0], &mut rhs, &mut scratch);
        // x: 5 interfaces * 4 rows; y: 5 * 4 columns
        assert_eq!(n, 40);
    }

    #[test]
    fn rhs_is_conservative_interior() {
        // The interior sum of the RHS telescopes to the boundary fluxes;
        // with periodic-identical ghosts on both sides the net is zero.
        let e = Euler::<1>::new(1.4);
        let shape = FieldShape::<1>::new([16], 2, 3);
        let mut field = FieldBlock::zeros(shape);
        // periodic-ish data: sin profile whose ghosts mirror the wrap
        let nvar = 3;
        let mut u = vec![0.0; nvar];
        for c in shape.ghosted_box().iter() {
            let x = (c[0].rem_euclid(16)) as f64 / 16.0;
            let w = [1.0 + 0.3 * (2.0 * std::f64::consts::PI * x).sin(), 0.7, 1.0];
            e.prim_to_cons(&w, &mut u);
            field.set_cell(c, &u);
        }
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        compute_rhs_block(&e, Scheme::muscl_rusanov(), &field, [1.0 / 16.0], &mut rhs, &mut scratch);
        for v in 0..3 {
            let s = rhs.interior_sum(v);
            assert!(s.abs() < 1e-11, "var {v} rhs sum {s}");
        }
    }

    #[test]
    fn powell_source_activates_on_divb() {
        let m = IdealMhd::new(5.0 / 3.0);
        let shape = FieldShape::new([4, 4], 2, 8);
        let mut field = uniform_block(&m, shape, &[1.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        // impose Bx = x -> divB = 1 everywhere
        for c in shape.ghosted_box().iter() {
            *field.at_mut(c, 4) = c[0] as f64 * 0.1;
        }
        let mut rhs = FieldBlock::zeros(shape);
        rhs.fill(0.0);
        add_powell_source(&m, &field, [0.1, 0.1], &mut rhs);
        // S_mx = -divB * Bx; divB = 1.0/0.1... central diff: (0.1)/(2*0.1)*2 = 1
        let c = [2i64, 2];
        let divb = 1.0;
        let bx = 0.2;
        assert!((rhs.at(c, 1) + divb * bx).abs() < 1e-12);
        // S_bx = -divB * vx = -0.5
        assert!((rhs.at(c, 4) + 0.5).abs() < 1e-12);
        // rho source is zero
        assert_eq!(rhs.at(c, 0), 0.0);
    }

    #[test]
    fn max_rate_scales_with_resolution() {
        let e = Euler::<2>::new(1.4);
        let shape = FieldShape::new([4, 4], 2, 4);
        let field = uniform_block(&e, shape, &[1.0, 0.0, 0.0, 1.0]);
        let r1 = max_rate_block(&e, &field, [0.1, 0.1]);
        let r2 = max_rate_block(&e, &field, [0.05, 0.05]);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
        let a = 1.4f64.sqrt();
        assert!((r1 - 2.0 * a / 0.1).abs() < 1e-10);
    }

    #[test]
    fn floors_applied_per_cell() {
        let e = Euler::<1>::new(1.4);
        let shape = FieldShape::<1>::new([8], 1, 3);
        let mut field = FieldBlock::zeros(shape);
        field.for_each_interior(|c, u| {
            u[0] = if c[0] == 3 { -1.0 } else { 1.0 };
            u[2] = 1.0;
        });
        let n = apply_floors_block(&e, &mut field);
        assert_eq!(n, 1);
        assert!(field.at([3], 0) > 0.0);
    }
}

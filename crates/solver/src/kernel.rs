//! Block update kernels — the hot loops of the whole repository.
//!
//! Everything Fig. 5 of the paper measures happens here: a block is a
//! regular array with ghost layers, so the kernel runs dense loops with
//! unit-stride inner dimension, no indirection, and all neighbor data
//! already resident in the ghost cells. Compare `ablock_celltree::fv`,
//! which must traverse the tree per face.
//!
//! The kernel is a dimension-by-dimension finite-volume update:
//! primitives are precomputed over the ghosted box once, each interface is
//! reconstructed (first-order or MUSCL), fed to the chosen approximate
//! Riemann solver, and accumulated into the RHS. Ideal MHD additionally
//! receives the Powell 8-wave `−(∇·B)(0, B, u, u·B)` source evaluated with
//! central differences.

use ablock_core::field::FieldBlock;
use ablock_core::index::{Face, IVec};

use crate::flux::{numerical_flux, Riemann};
use crate::physics::{Physics, MAX_VARS};
use crate::recon::{reconstruct_interface, Recon};

/// Full spatial scheme: reconstruction plus Riemann solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scheme {
    /// Interface reconstruction.
    pub recon: Recon,
    /// Approximate Riemann solver.
    pub riemann: Riemann,
}

impl Scheme {
    /// Second-order MUSCL/minmod + Rusanov — the workhorse configuration.
    pub fn muscl_rusanov() -> Self {
        Scheme { recon: Recon::Muscl(crate::recon::Limiter::Minmod), riemann: Riemann::Rusanov }
    }

    /// First-order Godunov + Rusanov (one ghost layer suffices).
    pub fn first_order() -> Self {
        Scheme { recon: Recon::FirstOrder, riemann: Riemann::Rusanov }
    }
}

/// Interface fluxes recorded on the six faces of one block, used by the
/// refluxing pass (`crate::reflux`) to make coarse/fine interfaces exactly
/// conservative.
///
/// Layout per face: `nvar` values per interface cell, interface cells in
/// row-major order over the transverse axes (lowest axis fastest).
#[derive(Clone, Debug)]
pub struct FaceFluxStore<const D: usize> {
    nvar: usize,
    dims: IVec<D>,
    faces: Vec<Vec<f64>>,
}

impl<const D: usize> FaceFluxStore<D> {
    /// Zeroed store for a block of `dims` interior cells.
    pub fn new(dims: IVec<D>, nvar: usize) -> Self {
        let mut faces = Vec::with_capacity(2 * D);
        for fi in 0..2 * D {
            let dir = fi / 2;
            let cells: i64 = (0..D).filter(|&a| a != dir).map(|a| dims[a]).product();
            faces.push(vec![0.0; cells as usize * nvar]);
        }
        FaceFluxStore { nvar, dims, faces }
    }

    /// Linear offset of the interface cell with transverse coordinates
    /// taken from `c` (the normal component of `c` is ignored).
    #[inline]
    pub fn offset(&self, face: Face, c: IVec<D>) -> usize {
        let dir = face.dim as usize;
        let mut idx = 0i64;
        let mut stride = 1i64;
        for a in 0..D {
            if a == dir {
                continue;
            }
            idx += c[a] * stride;
            stride *= self.dims[a];
        }
        idx as usize * self.nvar
    }

    /// Flux vector of one interface cell on one face.
    pub fn flux(&self, face: Face, c: IVec<D>) -> &[f64] {
        let o = self.offset(face, c);
        &self.faces[face.index()][o..o + self.nvar]
    }

    /// Mutable flux vector of one interface cell.
    pub fn flux_mut(&mut self, face: Face, c: IVec<D>) -> &mut [f64] {
        let o = self.offset(face, c);
        &mut self.faces[face.index()][o..o + self.nvar]
    }

    /// All flux values of one face.
    pub fn face(&self, face: Face) -> &[f64] {
        &self.faces[face.index()]
    }
}

/// Convert the conserved field to primitives over the whole ghosted box
/// into `prim` (same layout as the field's storage). Cells whose density
/// is non-positive (unfilled ghost corners) are skipped.
fn primitives<const D: usize, P: Physics>(phys: &P, field: &FieldBlock<D>, prim: &mut Vec<f64>) {
    let n = phys.nvar();
    prim.resize(field.as_slice().len(), 0.0);
    let shape = *field.shape();
    let u = field.as_slice();
    for c in shape.ghosted_box().iter() {
        let i = shape.lin(c);
        if u[i] > 0.0 {
            let (head, tail) = (&u[i..i + n], &mut prim[i..i + n]);
            phys.cons_to_prim(head, tail);
        }
    }
}

/// Accumulate `∂u/∂t` for one block into `rhs` (interior cells only; `rhs`
/// must have the same shape as `field`). Ghosts of `field` must be filled.
/// `h` is the physical cell size of this block's level. Returns the number
/// of interface flux evaluations (one per interface per direction).
pub fn compute_rhs_block<const D: usize, P: Physics>(
    phys: &P,
    scheme: Scheme,
    field: &FieldBlock<D>,
    h: [f64; D],
    rhs: &mut FieldBlock<D>,
    prim_scratch: &mut Vec<f64>,
) -> usize {
    compute_rhs_block_fluxes(phys, scheme, field, h, rhs, prim_scratch, None)
}

/// [`compute_rhs_block`] with optional recording of the block-face
/// interface fluxes (needed by the refluxing pass).
#[allow(clippy::too_many_arguments)]
pub fn compute_rhs_block_fluxes<const D: usize, P: Physics>(
    phys: &P,
    scheme: Scheme,
    field: &FieldBlock<D>,
    h: [f64; D],
    rhs: &mut FieldBlock<D>,
    prim_scratch: &mut Vec<f64>,
    mut flux_store: Option<&mut FaceFluxStore<D>>,
) -> usize {
    let n = phys.nvar();
    debug_assert_eq!(field.shape(), rhs.shape());
    debug_assert!(field.shape().nghost >= scheme.recon.required_ghosts());
    let shape = *field.shape();
    let strides = shape.strides();

    // zero the RHS interior
    for c in shape.interior_box().iter() {
        rhs.cell_mut(c).fill(0.0);
    }

    primitives(phys, field, prim_scratch);
    let prim: &[f64] = prim_scratch;
    let rhs_s = rhs.as_mut_slice();

    let mut wl = [0.0; MAX_VARS];
    let mut wr = [0.0; MAX_VARS];
    let mut ul = [0.0; MAX_VARS];
    let mut ur = [0.0; MAX_VARS];
    let mut f = [0.0; MAX_VARS];
    let mut nflux = 0usize;

    for dir in 0..D {
        let step = strides[dir] as usize;
        let inv_h = 1.0 / h[dir];
        let m_dir = shape.dims[dir];
        // interface index i in [0, m]: between cells i-1 and i along dir
        let mut ibox = shape.interior_box();
        ibox.hi[dir] += 1;
        for c in ibox.iter() {
            // linear index of cell `c` (the right cell of the interface)
            let ic = shape.lin(c);
            let im = ic - step;
            match scheme.recon {
                Recon::FirstOrder => {
                    wl[..n].copy_from_slice(&prim[im..im + n]);
                    wr[..n].copy_from_slice(&prim[ic..ic + n]);
                }
                Recon::Muscl(_) => {
                    let imm = im - step;
                    let ipp = ic + step;
                    for v in 0..n {
                        let (l, r) = reconstruct_interface(
                            scheme.recon,
                            prim[imm + v],
                            prim[im + v],
                            prim[ic + v],
                            prim[ipp + v],
                        );
                        wl[v] = l;
                        wr[v] = r;
                    }
                }
            }
            phys.prim_to_cons(&wl[..n], &mut ul[..n]);
            phys.prim_to_cons(&wr[..n], &mut ur[..n]);
            numerical_flux(phys, scheme.riemann, &ul[..n], &ur[..n], dir, &mut f[..n]);
            nflux += 1;
            let i = c[dir];
            if let Some(store) = flux_store.as_deref_mut() {
                if i == 0 {
                    store
                        .flux_mut(Face::new(dir, false), c)
                        .copy_from_slice(&f[..n]);
                } else if i == m_dir {
                    store
                        .flux_mut(Face::new(dir, true), c)
                        .copy_from_slice(&f[..n]);
                }
            }
            if i > 0 {
                // left cell gains -F/h
                for v in 0..n {
                    rhs_s[im + v] -= f[v] * inv_h;
                }
            }
            if i < m_dir {
                for v in 0..n {
                    rhs_s[ic + v] += f[v] * inv_h;
                }
            }
        }
    }

    if phys.powell_source() {
        add_powell_source(phys, field, h, rhs);
    }
    nflux
}

/// Add the Powell 8-wave source `−(∇·B)(0, B, u, u·B)` over the interior,
/// with `∇·B` from central differences (requires one valid ghost layer).
pub fn add_powell_source<const D: usize, P: Physics>(
    phys: &P,
    field: &FieldBlock<D>,
    h: [f64; D],
    rhs: &mut FieldBlock<D>,
) {
    let [ibx, iby, ibz] = phys.b_indices().expect("powell source requires B field");
    let b_idx = [ibx, iby, ibz];
    let shape = *field.shape();
    for c in shape.interior_box().iter() {
        let mut divb = 0.0;
        for d in 0..D {
            let mut cp: IVec<D> = c;
            cp[d] += 1;
            let mut cm: IVec<D> = c;
            cm[d] -= 1;
            divb += (field.at(cp, b_idx[d]) - field.at(cm, b_idx[d])) / (2.0 * h[d]);
        }
        if divb == 0.0 {
            continue;
        }
        let u = field.cell(c);
        let rho = u[0];
        let v = [u[1] / rho, u[2] / rho, u[3] / rho];
        let b = [u[ibx], u[iby], u[ibz]];
        let vdotb = v[0] * b[0] + v[1] * b[1] + v[2] * b[2];
        let out = rhs.cell_mut(c);
        for k in 0..3 {
            out[1 + k] -= divb * b[k];
            out[b_idx[k]] -= divb * v[k];
        }
        let ie = phys.nvar() - 1;
        out[ie] -= divb * vdotb;
    }
}

/// Maximum of `Σ_d max_speed_d / h_d` over the interior — the reciprocal
/// of the largest stable forward-Euler `dt` (times the CFL number).
pub fn max_rate_block<const D: usize, P: Physics>(
    phys: &P,
    field: &FieldBlock<D>,
    h: [f64; D],
) -> f64 {
    let mut rate: f64 = 0.0;
    for c in field.shape().interior_box().iter() {
        let u = field.cell(c);
        let mut r = 0.0;
        for d in 0..D {
            r += phys.max_speed(u, d) / h[d];
        }
        rate = rate.max(r);
    }
    rate
}

/// Apply positivity floors over the interior; returns cells clamped.
pub fn apply_floors_block<const D: usize, P: Physics>(
    phys: &P,
    field: &mut FieldBlock<D>,
) -> usize {
    let mut count = 0;
    field.for_each_interior(|_, u| {
        if phys.apply_floors(u) {
            count += 1;
        }
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::Euler;
    use crate::mhd::IdealMhd;
    use ablock_core::field::FieldShape;

    /// Fill an isolated block (ghosts included) with uniform flow.
    fn uniform_block<P: Physics>(phys: &P, shape: FieldShape<2>, w: &[f64]) -> FieldBlock<2> {
        let mut f = FieldBlock::zeros(shape);
        let n = phys.nvar();
        let mut u = vec![0.0; n];
        phys.prim_to_cons(w, &mut u);
        f.for_each_ghosted(|_, cell| cell.copy_from_slice(&u));
        f
    }

    #[test]
    fn uniform_state_has_zero_rhs() {
        // Free-stream preservation: uniform flow must produce rhs = 0.
        let e = Euler::<2>::new(1.4);
        let shape = FieldShape::new([8, 6], 2, 4);
        let field = uniform_block(&e, shape, &[1.0, 0.3, -0.2, 0.8]);
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        for scheme in [Scheme::first_order(), Scheme::muscl_rusanov()] {
            compute_rhs_block(&e, scheme, &field, [0.1, 0.1], &mut rhs, &mut scratch);
            for c in shape.interior_box().iter() {
                for v in 0..4 {
                    assert!(
                        rhs.at(c, v).abs() < 1e-13,
                        "{scheme:?} cell {c:?} var {v}: {}",
                        rhs.at(c, v)
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_mhd_state_preserved_with_powell() {
        let m = IdealMhd::new(5.0 / 3.0);
        let shape = FieldShape::new([6, 6], 2, 8);
        let field = uniform_block(&m, shape, &[1.0, 0.2, 0.1, -0.3, 0.5, 0.4, 0.6, 0.9]);
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        compute_rhs_block(&m, Scheme::muscl_rusanov(), &field, [0.05, 0.05], &mut rhs, &mut scratch);
        for c in shape.interior_box().iter() {
            for v in 0..8 {
                assert!(rhs.at(c, v).abs() < 1e-12, "cell {c:?} var {v}: {}", rhs.at(c, v));
            }
        }
    }

    #[test]
    fn flux_count_matches_interfaces() {
        let e = Euler::<2>::new(1.4);
        let shape = FieldShape::new([4, 4], 2, 4);
        let field = uniform_block(&e, shape, &[1.0, 0.0, 0.0, 1.0]);
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        let n = compute_rhs_block(&e, Scheme::first_order(), &field, [1.0, 1.0], &mut rhs, &mut scratch);
        // x: 5 interfaces * 4 rows; y: 5 * 4 columns
        assert_eq!(n, 40);
    }

    #[test]
    fn rhs_is_conservative_interior() {
        // The interior sum of the RHS telescopes to the boundary fluxes;
        // with periodic-identical ghosts on both sides the net is zero.
        let e = Euler::<1>::new(1.4);
        let shape = FieldShape::<1>::new([16], 2, 3);
        let mut field = FieldBlock::zeros(shape);
        // periodic-ish data: sin profile whose ghosts mirror the wrap
        let nvar = 3;
        let mut u = vec![0.0; nvar];
        for c in shape.ghosted_box().iter() {
            let x = (c[0].rem_euclid(16)) as f64 / 16.0;
            let w = [1.0 + 0.3 * (2.0 * std::f64::consts::PI * x).sin(), 0.7, 1.0];
            e.prim_to_cons(&w, &mut u);
            field.set_cell(c, &u);
        }
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        compute_rhs_block(&e, Scheme::muscl_rusanov(), &field, [1.0 / 16.0], &mut rhs, &mut scratch);
        for v in 0..3 {
            let s = rhs.interior_sum(v);
            assert!(s.abs() < 1e-11, "var {v} rhs sum {s}");
        }
    }

    #[test]
    fn powell_source_activates_on_divb() {
        let m = IdealMhd::new(5.0 / 3.0);
        let shape = FieldShape::new([4, 4], 2, 8);
        let mut field = uniform_block(&m, shape, &[1.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        // impose Bx = x -> divB = 1 everywhere
        for c in shape.ghosted_box().iter() {
            field.cell_mut(c)[4] = c[0] as f64 * 0.1;
        }
        let mut rhs = FieldBlock::zeros(shape);
        rhs.fill(0.0);
        add_powell_source(&m, &field, [0.1, 0.1], &mut rhs);
        // S_mx = -divB * Bx; divB = 1.0/0.1... central diff: (0.1)/(2*0.1)*2 = 1
        let c = [2i64, 2];
        let divb = 1.0;
        let bx = 0.2;
        assert!((rhs.at(c, 1) + divb * bx).abs() < 1e-12);
        // S_bx = -divB * vx = -0.5
        assert!((rhs.at(c, 4) + 0.5).abs() < 1e-12);
        // rho source is zero
        assert_eq!(rhs.at(c, 0), 0.0);
    }

    #[test]
    fn max_rate_scales_with_resolution() {
        let e = Euler::<2>::new(1.4);
        let shape = FieldShape::new([4, 4], 2, 4);
        let field = uniform_block(&e, shape, &[1.0, 0.0, 0.0, 1.0]);
        let r1 = max_rate_block(&e, &field, [0.1, 0.1]);
        let r2 = max_rate_block(&e, &field, [0.05, 0.05]);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
        let a = 1.4f64.sqrt();
        assert!((r1 - 2.0 * a / 0.1).abs() < 1e-10);
    }

    #[test]
    fn floors_applied_per_cell() {
        let e = Euler::<1>::new(1.4);
        let shape = FieldShape::<1>::new([8], 1, 3);
        let mut field = FieldBlock::zeros(shape);
        field.for_each_interior(|c, u| {
            u[0] = if c[0] == 3 { -1.0 } else { 1.0 };
            u[2] = 1.0;
        });
        let n = apply_floors_block(&e, &mut field);
        assert_eq!(n, 1);
        assert!(field.at([3], 0) > 0.0);
    }
}

//! Time integration over an entire adaptive block grid.
//!
//! A [`Stepper`] is the *serial executor* over the shared
//! [`SweepEngine`], which owns the cached
//! ghost-exchange plan and the RHS/stage scratch; the grid itself stays a
//! plain data structure. Construction takes a
//! [`SolverConfig`] — the same bundle the
//! shared-memory and distributed executors in `ablock-par` and the AMR
//! driver consume — so physics, scheme, time integrator, CFL, refluxing,
//! and the metrics sink are chosen once:
//!
//! ```
//! use ablock_solver::{Euler, Scheme, SolverConfig, Stepper};
//!
//! let cfg = SolverConfig::new(Euler::<1>::new(1.4), Scheme::muscl_rusanov());
//! let mut st: Stepper<1, _> = Stepper::new(cfg);
//! # let _ = &mut st;
//! ```
//!
//! The plan cache is keyed on the grid's
//! [topology epoch](BlockGrid::epoch): adapting the grid bumps the epoch
//! and the next step rebuilds automatically — no manual invalidation on
//! the hot path. That is the paper's amortization argument (adaptation is
//! infrequent, stepping is hot) made safe by construction. For
//! out-of-band changes the epoch cannot see, the engine's
//! [`invalidate`](crate::engine::SweepEngine::invalidate) (via
//! [`Stepper::engine_mut`]) is the single escape hatch.
//!
//! Integrators: forward Euler and Heun's 2-stage SSP-RK2 (matching the
//! second-order MUSCL spatial scheme). When the config carries a
//! recording [`Metrics`] sink, each step reports
//! `ghost_fill`/`flux`/`reflux`/`update` phase spans; with the default
//! null sink the instrumentation is a branch per phase and results are
//! bitwise identical (asserted by `tests/metrics_obs.rs`).

use ablock_core::arena::BlockId;
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_core::grid::BlockGrid;
use ablock_obs::{phase, Metrics};

use crate::config::{SolverConfig, TimeStepMode};
use crate::engine::{fe_update_block, rk2_stage1_block, rk2_stage2_block, SweepEngine};
use crate::kernel::{compute_rhs_block_fluxes, max_rate_block, Scheme};
use crate::physics::Physics;
use crate::reflux::reflux_rhs;
use crate::subcycle::SubcycleState;

pub use crate::engine::BcFn;

/// Time integrator choice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimeScheme {
    /// Forward Euler (first order in time).
    ForwardEuler,
    /// Heun / SSP-RK2 (second order in time).
    SspRk2,
}

/// Serial executor: drives steps of `∂u/∂t = L(u)` on a block grid over a
/// [`SweepEngine`] (which owns plan cache and scratch).
///
/// [`SolverConfig::comm_overlap`] has no serial meaning and is ignored
/// here; it is the bitwise reference the overlapped parallel executors
/// are differentially tested against.
pub struct Stepper<const D: usize, P: Physics> {
    cfg: SolverConfig<P>,
    engine: SweepEngine<D>,
    sub: SubcycleState<D>,
    /// Cells clamped by positivity floors since construction.
    pub floored_cells: usize,
    /// Interface flux evaluations since construction.
    pub flux_evals: usize,
}

impl<const D: usize, P: Physics> Stepper<D, P> {
    /// New stepper from a [`SolverConfig`] (time scheme, CFL, refluxing,
    /// ghost config, and metrics sink all come from it).
    pub fn new(cfg: SolverConfig<P>) -> Self {
        let engine = cfg.engine();
        Stepper { cfg, engine, sub: SubcycleState::new(), floored_cells: 0, flux_evals: 0 }
    }

    /// Split-borrow the config and engine for the subcycled driver
    /// (`crate::subcycle`), which needs both at once.
    pub(crate) fn cfg_engine_mut(&mut self) -> (&SolverConfig<P>, &mut SweepEngine<D>) {
        (&self.cfg, &mut self.engine)
    }

    /// The subcycling scratch, taken out with `mem::take` for the
    /// duration of driver calls (the driver borrows the stepper as the
    /// backend, so the state cannot stay behind `self`).
    pub(crate) fn sub_state(&mut self) -> &mut SubcycleState<D> {
        &mut self.sub
    }

    /// The configuration this stepper was built from.
    pub fn config(&self) -> &SolverConfig<P> {
        &self.cfg
    }

    /// The physics being integrated.
    pub fn physics(&self) -> &P {
        &self.cfg.physics
    }

    /// The spatial scheme.
    pub fn scheme(&self) -> Scheme {
        self.cfg.scheme
    }

    /// The ghost config in effect (from the [`SolverConfig`]).
    pub fn ghost_config(&self) -> GhostConfig {
        self.cfg.ghost.clone()
    }

    /// The metrics sink in effect (null unless the config installed one).
    pub fn metrics(&self) -> &Metrics {
        &self.cfg.metrics
    }

    /// The underlying sweep engine (plan cache stats, scratch).
    pub fn engine(&self) -> &SweepEngine<D> {
        &self.engine
    }

    /// Mutable engine access — the single escape hatch for out-of-band
    /// invalidation ([`SweepEngine::invalidate`]); never needed after
    /// grid adaptation (the topology epoch covers that).
    pub fn engine_mut(&mut self) -> &mut SweepEngine<D> {
        &mut self.engine
    }

    /// Access the cached exchange plan (revalidating it first).
    pub fn exchange<'a>(&'a mut self, grid: &BlockGrid<D>) -> &'a GhostExchange<D> {
        self.engine.revalidate(grid);
        self.engine.plan()
    }

    /// Fill ghosts with the cached plan.
    pub fn fill_ghosts(&mut self, grid: &mut BlockGrid<D>, bc: Option<&BcFn<D>>) {
        self.engine.fill_ghosts(grid, bc);
    }

    /// Largest stable `dt` (global CFL reduction over all blocks, using
    /// the config's CFL number).
    pub fn max_dt(&self, grid: &BlockGrid<D>) -> f64 {
        let mut rate: f64 = 0.0;
        for (_, node) in grid.blocks() {
            let h = grid.layout().cell_size(node.key().level, grid.params().block_dims);
            rate = rate.max(max_rate_block(&self.cfg.physics, node.field(), h));
        }
        if rate > 0.0 {
            self.cfg.cfl / rate
        } else {
            f64::INFINITY
        }
    }

    /// Evaluate `L(u)` into the engine's rhs scratch for every block.
    /// Ghosts are filled first. Returns ids processed.
    fn eval_rhs(&mut self, grid: &mut BlockGrid<D>, bc: Option<&BcFn<D>>) -> Vec<BlockId> {
        grid.ensure_geometry(&self.cfg.geometry);
        self.engine.fill_ghosts(grid, bc);
        let ids = grid.block_ids();
        {
            let _span = self.cfg.metrics.span(phase::FLUX);
            let sw = self.engine.sweep();
            for &id in &ids {
                let node = grid.block(id);
                let h = grid.layout().cell_size(node.key().level, grid.params().block_dims);
                let store = if self.cfg.refluxing {
                    Some(&mut sw.flux_stores[id.index()])
                } else {
                    None
                };
                self.flux_evals += compute_rhs_block_fluxes(
                    &self.cfg.physics,
                    self.cfg.scheme,
                    node.field(),
                    h,
                    &mut sw.rhs[id.index()],
                    sw.prim_scratch,
                    store,
                );
            }
        }
        if self.cfg.refluxing {
            let _span = self.cfg.metrics.span(phase::REFLUX);
            let sw = self.engine.sweep();
            reflux_rhs(grid, sw.flux_stores, sw.rhs);
        }
        ids
    }

    /// Advance the grid by `dt` with the configured integrator. Under
    /// [`TimeStepMode::Subcycled`], `dt` is the coarsest-level `dt₀` and
    /// finer levels take halved substeps (see [`crate::subcycle`]).
    pub fn step(&mut self, grid: &mut BlockGrid<D>, dt: f64, bc: Option<&BcFn<D>>) {
        grid.ensure_geometry(&self.cfg.geometry);
        if self.cfg.time_step_mode == TimeStepMode::Subcycled {
            return self.step_subcycled(grid, dt, bc);
        }
        match self.cfg.time_scheme {
            TimeScheme::ForwardEuler => self.step_fe(grid, dt, bc),
            TimeScheme::SspRk2 => self.step_rk2(grid, dt, bc),
        }
    }

    /// One forward-Euler step.
    pub fn step_fe(&mut self, grid: &mut BlockGrid<D>, dt: f64, bc: Option<&BcFn<D>>) {
        let ids = self.eval_rhs(grid, bc);
        let _span = self.cfg.metrics.span(phase::UPDATE);
        let sw = self.engine.sweep();
        for id in ids {
            let node = grid.block_mut(id);
            self.floored_cells +=
                fe_update_block(&self.cfg.physics, node.field_mut(), &sw.rhs[id.index()], dt);
        }
    }

    /// One Heun (SSP-RK2) step: `u* = u + dt L(u)`,
    /// `u^{n+1} = ½u + ½(u* + dt L(u*))`.
    pub fn step_rk2(&mut self, grid: &mut BlockGrid<D>, dt: f64, bc: Option<&BcFn<D>>) {
        // stage 1: save u^n, then overwrite grid with u*
        let ids = self.eval_rhs(grid, bc);
        {
            let _span = self.cfg.metrics.span(phase::UPDATE);
            let sw = self.engine.sweep();
            for &id in &ids {
                let node = grid.block_mut(id);
                self.floored_cells += rk2_stage1_block(
                    &self.cfg.physics,
                    node.field_mut(),
                    &sw.rhs[id.index()],
                    &mut sw.stage[id.index()],
                    dt,
                );
            }
        }
        // stage 2 (ghosts refilled for u*)
        let ids = self.eval_rhs(grid, bc);
        let _span = self.cfg.metrics.span(phase::UPDATE);
        let sw = self.engine.sweep();
        for id in ids {
            let node = grid.block_mut(id);
            self.floored_cells += rk2_stage2_block(
                &self.cfg.physics,
                node.field_mut(),
                &sw.rhs[id.index()],
                &sw.stage[id.index()],
                dt,
            );
        }
    }

    /// Advance to `t_end` with CFL-limited steps; returns steps taken.
    pub fn run_until(
        &mut self,
        grid: &mut BlockGrid<D>,
        t0: f64,
        t_end: f64,
        bc: Option<&BcFn<D>>,
    ) -> usize {
        // Install the config's geometry before the first CFL scan so solid
        // cells never constrain dt.
        grid.ensure_geometry(&self.cfg.geometry);
        let mut t = t0;
        let mut steps = 0;
        while t < t_end - 1e-14 {
            let dt = self.stable_dt(grid).min(t_end - t);
            assert!(dt.is_finite() && dt > 0.0, "non-positive dt at t = {t}");
            self.step(grid, dt, bc);
            t += dt;
            steps += 1;
            assert!(steps < 1_000_000, "step explosion before t_end");
        }
        steps
    }
}

/// Volume-weighted total of one conserved variable over the grid
/// (conservation diagnostics in tests and EXPERIMENTS.md).
pub fn total_conserved<const D: usize>(grid: &BlockGrid<D>, v: usize) -> f64 {
    let m = grid.params().block_dims;
    grid.blocks()
        .map(|(_, n)| {
            let h = grid.layout().cell_size(n.key().level, m);
            let vol: f64 = h.iter().product();
            n.field().interior_sum(v) * vol
        })
        .sum()
}

/// Volume-weighted total of one conserved variable over the *fluid* cells
/// only — the conserved quantity on grids with an immersed solid geometry
/// (solid faces are reflective walls, so nothing crosses them; see
/// DESIGN.md §18). Identical to [`total_conserved`] on maskless grids,
/// including the summation order.
pub fn total_conserved_fluid<const D: usize>(grid: &BlockGrid<D>, v: usize) -> f64 {
    let m = grid.params().block_dims;
    grid.blocks()
        .map(|(_, n)| {
            let h = grid.layout().cell_size(n.key().level, m);
            let vol: f64 = h.iter().product();
            let f = n.field();
            match f.mask() {
                None => f.interior_sum(v) * vol,
                Some(mask) => {
                    let shape = *f.shape();
                    let ps = shape.plane_stride();
                    let data = f.as_slice();
                    let mut s = 0.0;
                    for c in shape.interior_box().iter() {
                        let i = shape.lin(c);
                        if mask[i] != 0.0 {
                            continue;
                        }
                        s += data[v * ps + i];
                    }
                    s * vol
                }
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::Euler;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_core::ops::ProlongOrder;

    fn periodic_grid_1d(nblocks: i64, m: i64) -> BlockGrid<1> {
        BlockGrid::new(
            RootLayout::unit([nblocks], Boundary::Periodic),
            GridParams::new([m], 2, 3, 3),
        )
    }

    fn set_sine_density(grid: &mut BlockGrid<1>, e: &Euler<1>, v0: f64) {
        let m = grid.params().block_dims;
        let layout = grid.layout().clone();
        for id in grid.block_ids() {
            let key = grid.block(id).key();
            let e = e.clone();
            grid.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, m, c)[0];
                let w = [1.0 + 0.2 * (2.0 * std::f64::consts::PI * x).sin(), v0, 1.0];
                e.prim_to_cons(&w, u);
            });
        }
    }

    #[test]
    fn uniform_flow_is_steady() {
        let e = Euler::<1>::new(1.4);
        let mut g = periodic_grid_1d(4, 8);
        for id in g.block_ids() {
            let e = e.clone();
            g.block_mut(id).field_mut().for_each_interior(|_, u| {
                e.prim_to_cons(&[1.0, 0.5, 1.0], u);
            });
        }
        let mut st =
            Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()).with_cfl(0.5));
        let before = total_conserved(&g, 0);
        for _ in 0..10 {
            let dt = st.max_dt(&g);
            st.step(&mut g, dt, None);
        }
        for (_, n) in g.blocks() {
            for c in n.field().shape().interior_box().iter() {
                assert!((n.field().at(c, 0) - 1.0).abs() < 1e-12);
            }
        }
        assert!((total_conserved(&g, 0) - before).abs() < 1e-13);
    }

    #[test]
    fn conservation_on_periodic_domain() {
        let e = Euler::<1>::new(1.4);
        let mut g = periodic_grid_1d(4, 8);
        set_sine_density(&mut g, &e, 0.7);
        let m0 = total_conserved(&g, 0);
        let e0 = total_conserved(&g, 2);
        let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        st.run_until(&mut g, 0.0, 0.2, None);
        assert!((total_conserved(&g, 0) - m0).abs() < 1e-12 * m0.abs());
        assert!((total_conserved(&g, 2) - e0).abs() < 1e-12 * e0.abs());
    }

    #[test]
    fn advected_sine_returns_after_period() {
        // At uniform velocity and uniform pressure, a small density wave is
        // advected; after one domain crossing it must be close to the
        // initial state (2nd order => small error at this resolution).
        let e = Euler::<1>::new(1.4);
        let mut g = periodic_grid_1d(8, 8); // 64 cells
        set_sine_density(&mut g, &e, 1.0);
        let snapshot: Vec<f64> = g
            .block_ids()
            .iter()
            .flat_map(|&id| {
                let f = g.block(id).field();
                f.shape()
                    .interior_box()
                    .iter()
                    .map(|c| f.at(c, 0))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        st.run_until(&mut g, 0.0, 1.0, None);
        let after: Vec<f64> = g
            .block_ids()
            .iter()
            .flat_map(|&id| {
                let f = g.block(id).field();
                f.shape()
                    .interior_box()
                    .iter()
                    .map(|c| f.at(c, 0))
                    .collect::<Vec<_>>()
            })
            .collect();
        let err: f64 = snapshot
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / snapshot.len() as f64;
        assert!(err < 0.01, "L1 error after one period: {err}");
    }

    #[test]
    fn refined_grid_conserves() {
        let e = Euler::<1>::new(1.4);
        let mut g = periodic_grid_1d(4, 8);
        set_sine_density(&mut g, &e, 0.5);
        // refine one block (conservatively)
        let id = g.find(BlockKey::new(0, [1])).unwrap();
        g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        let m0 = total_conserved(&g, 0);
        let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        st.run_until(&mut g, 0.0, 0.1, None);
        let m1 = total_conserved(&g, 0);
        // flux mismatch at coarse-fine faces is the known first-order AMR
        // conservation defect; bound it tightly
        assert!(
            (m1 - m0).abs() < 5e-4 * m0.abs(),
            "mass drift too large: {m0} -> {m1}"
        );
    }

    #[test]
    fn rk2_beats_fe_on_smooth_advection() {
        // L1 error against the exact translated profile after one domain
        // crossing: SSP-RK2 must not lose to forward Euler.
        let l1_err = |ts: TimeScheme| {
            let e = Euler::<1>::new(1.4);
            let mut g = periodic_grid_1d(8, 8);
            set_sine_density(&mut g, &e, 1.0);
            let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_time_scheme(ts)
                .with_cfl(0.3);
            let mut st = Stepper::new(cfg);
            st.run_until(&mut g, 0.0, 1.0, None);
            let m = g.params().block_dims;
            let layout = g.layout().clone();
            let mut err = 0.0;
            let mut n_cells = 0usize;
            for (_, node) in g.blocks() {
                for c in node.field().shape().interior_box().iter() {
                    let x = layout.cell_center(node.key(), m, c)[0];
                    let exact = 1.0 + 0.2 * (2.0 * std::f64::consts::PI * x).sin();
                    err += (node.field().at(c, 0) - exact).abs();
                    n_cells += 1;
                }
            }
            err / n_cells as f64
        };
        let fe = l1_err(TimeScheme::ForwardEuler);
        let rk = l1_err(TimeScheme::SspRk2);
        assert!(rk <= fe * 1.02, "rk err {rk} vs fe err {fe}");
        assert!(rk < 0.02, "rk err too large: {rk}");
    }

    #[test]
    fn refluxing_makes_refined_runs_exactly_conservative() {
        // Same refined-grid advection as `refined_grid_conserves`, but with
        // flux correction on: the drift collapses from ~1e-4 to roundoff.
        let run = |reflux: bool| -> f64 {
            let e = Euler::<1>::new(1.4);
            let mut g = periodic_grid_1d(4, 8);
            set_sine_density(&mut g, &e, 0.5);
            let id = g.find(BlockKey::new(0, [1])).unwrap();
            g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
            let m0 = total_conserved(&g, 0);
            let cfg = SolverConfig::new(e, Scheme::muscl_rusanov()).with_refluxing(reflux);
            let mut st = Stepper::new(cfg);
            st.run_until(&mut g, 0.0, 0.1, None);
            (total_conserved(&g, 0) - m0).abs() / m0.abs()
        };
        let with = run(true);
        let without = run(false);
        assert!(with < 1e-13, "refluxed drift {with}");
        assert!(without > 1e-8, "control must show the defect: {without}");
        assert!(with < without / 1e3);
    }

    #[test]
    fn refluxing_conserves_in_2d_with_wrapped_faces() {
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([8, 8], 2, 4, 2),
        );
        crate::problems::advected_gaussian(&mut g, &e, [0.6, -0.3], [0.5, 0.5], 0.15);
        let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
        g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        let m0 = total_conserved(&g, 0);
        let e0 = total_conserved(&g, 3);
        let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
            .with_refluxing(true)
            .with_cfl(0.35);
        let mut st = Stepper::new(cfg);
        st.run_until(&mut g, 0.0, 0.05, None);
        assert!((total_conserved(&g, 0) - m0).abs() < 1e-12 * m0.abs());
        assert!((total_conserved(&g, 3) - e0).abs() < 1e-12 * e0.abs());
    }

    #[test]
    fn immersed_solid_conserves_fluid_mass_and_energy_exactly() {
        // A sphere in a periodic 2D flow: solid faces are reflective
        // walls whose mass/energy flux components are exactly ±0.0, so
        // fluid-cell totals of rho and E must hold to the last ulp, the
        // solid interior must stay bitwise frozen, and the mask
        // invariants must survive the run.
        use ablock_core::geom::Geometry;
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([8, 8], 2, 4, 2),
        );
        crate::problems::advected_gaussian(&mut g, &e, [0.6, -0.4], [0.25, 0.25], 0.1);
        let geom = Geometry::sphere([0.65, 0.6, 0.0], 0.18);
        let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
            .with_refluxing(true)
            .with_geometry(geom)
            .with_cfl(0.3);
        let mut st = Stepper::new(cfg);
        // install the geometry (first step does it), then baseline totals
        st.step(&mut g, 1e-4, None);
        ablock_core::verify::check_grid(&g).unwrap();
        let frozen: Vec<(ablock_core::arena::BlockId, Vec<u64>)> = g
            .blocks()
            .map(|(id, n)| {
                let f = n.field();
                let bits = f
                    .shape()
                    .interior_box()
                    .iter()
                    .filter(|&c| f.is_solid(c))
                    .flat_map(|c| (0..4).map(move |v| (c, v)))
                    .map(|(c, v)| f.at(c, v).to_bits())
                    .collect();
                (id, bits)
            })
            .collect();
        assert!(frozen.iter().any(|(_, b)| !b.is_empty()), "sphere must cover cells");
        let m0 = total_conserved_fluid(&g, 0);
        let e0 = total_conserved_fluid(&g, 3);
        st.run_until(&mut g, 0.0, 0.02, None);
        let m1 = total_conserved_fluid(&g, 0);
        let e1 = total_conserved_fluid(&g, 3);
        assert!((m1 - m0).abs() < 1e-13 * m0.abs(), "mass drift {m0} -> {m1}");
        assert!((e1 - e0).abs() < 1e-13 * e0.abs(), "energy drift {e0} -> {e1}");
        for (id, bits) in frozen {
            let f = g.block(id).field();
            let now: Vec<u64> = f
                .shape()
                .interior_box()
                .iter()
                .filter(|&c| f.is_solid(c))
                .flat_map(|c| (0..4).map(move |v| (c, v)))
                .map(|(c, v)| f.at(c, v).to_bits())
                .collect();
            assert_eq!(bits, now, "solid cells must stay bitwise frozen");
        }
        ablock_core::verify::check_grid(&g).unwrap();
    }

    #[test]
    fn immersed_solid_conserves_on_refined_subcycled_grid() {
        // Same sphere, but with a refined block overlapping the body and
        // subcycled time stepping: the wall treatment must stay exactly
        // conservative through prolongation, restriction, and
        // state-space refluxing.
        use ablock_core::geom::Geometry;
        let e = Euler::<2>::new(1.4);
        let run = |mode: TimeStepMode| -> (f64, f64) {
            let mut g = BlockGrid::<2>::new(
                RootLayout::unit([2, 2], Boundary::Periodic),
                GridParams::new([8, 8], 2, 4, 2),
            );
            crate::problems::advected_gaussian(&mut g, &e, [0.6, -0.4], [0.25, 0.25], 0.1);
            let cfg = SolverConfig::new(e.clone(), Scheme::muscl_rusanov())
                .with_refluxing(true)
                .with_geometry(Geometry::sphere([0.65, 0.6, 0.0], 0.18))
                .with_time_step_mode(mode)
                .with_cfl(0.3);
            let mut st = Stepper::new(cfg);
            st.step(&mut g, 1e-4, None); // installs geometry
            let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
            g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
            ablock_core::verify::check_grid(&g).unwrap();
            let m0 = total_conserved_fluid(&g, 0);
            let e0 = total_conserved_fluid(&g, 3);
            st.run_until(&mut g, 0.0, 0.02, None);
            ablock_core::verify::check_grid(&g).unwrap();
            (
                (total_conserved_fluid(&g, 0) - m0).abs() / m0.abs(),
                (total_conserved_fluid(&g, 3) - e0).abs() / e0.abs(),
            )
        };
        for mode in [TimeStepMode::Global, TimeStepMode::Subcycled] {
            let (dm, de) = run(mode);
            assert!(dm < 1e-12, "{mode:?} mass drift {dm}");
            assert!(de < 1e-12, "{mode:?} energy drift {de}");
        }
    }

    #[test]
    fn stepper_survives_adapt_without_invalidate() {
        let e = Euler::<1>::new(1.4);
        let mut g = periodic_grid_1d(4, 8);
        set_sine_density(&mut g, &e, 0.5);
        let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        st.step(&mut g, 1e-4, None);
        let id = g.block_ids()[0];
        g.refine(id, Transfer::Conservative(ProlongOrder::Constant)).unwrap();
        // no invalidate: the epoch bump makes the engine rebuild on its own
        st.step(&mut g, 1e-4, None);
        assert!(st.flux_evals > 0);
        assert_eq!(st.engine().stats().rebuilds, 2);
    }

    #[test]
    fn recording_steps_report_phase_spans() {
        let e = Euler::<1>::new(1.4);
        let mut g = periodic_grid_1d(4, 8);
        set_sine_density(&mut g, &e, 0.5);
        let metrics = ablock_obs::Metrics::recording();
        let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
            .with_refluxing(true)
            .with_metrics(metrics.clone());
        let mut st = Stepper::new(cfg);
        st.step(&mut g, 1e-4, None);
        let s = metrics.snapshot();
        // RK2: two rhs evals (ghost_fill + flux + reflux each) and two
        // stage updates per step
        assert_eq!(s.spans[phase::GHOST_FILL].count, 2);
        assert_eq!(s.spans[phase::FLUX].count, 2);
        assert_eq!(s.spans[phase::REFLUX].count, 2);
        assert_eq!(s.spans[phase::UPDATE].count, 2);
        assert_eq!(s.counter("engine.plan_rebuilds"), 1);
        assert_eq!(s.counter("engine.plan_reuses"), 1);
    }
}

//! # ablock-solver — finite-volume kernels on adaptive blocks
//!
//! The numerical workload of the SC'97 *Adaptive Blocks* paper: ideal MHD
//! (and Euler gas dynamics) solved with a Godunov-type finite-volume
//! scheme on the block grids of `ablock-core`.
//!
//! * [`physics`] — the system interface; [`euler`] and [`mhd`] implement it
//!   (MHD includes the Powell 8-wave `∇·B` source the paper's group used).
//! * [`recon`] — first-order and MUSCL (van Leer, paper ref. \[6\])
//!   reconstruction with minmod / MC / van Leer limiters.
//! * [`flux`] — Rusanov and HLL approximate Riemann solvers.
//! * [`kernel`] — the dense per-block update loops Fig. 5 measures.
//! * [`config`] — [`SolverConfig`], the one construction surface every
//!   executor consumes (physics, scheme, CFL, ghost config, metrics sink).
//! * [`engine`] — the shared sweep engine: epoch-keyed ghost-plan cache and
//!   reusable scratch consumed by every executor (serial, pool, distributed).
//! * [`stepper`] — forward-Euler and SSP-RK2 integration over a grid,
//!   including ghost exchange and global CFL reduction.
//! * [`subcycle`] — Berger–Oliger local time stepping: per-level `dt`,
//!   time-interpolated ghost fills, and flux-accumulated refluxing.
//! * [`problems`] — Sod, Brio–Wu, Orszag–Tang, Sedov, MHD blast, and the
//!   Parker-like solar-wind source used by the CME example.
//! * [`poisson`] — geometric multigrid for `∇²u = f` on block hierarchies
//!   (the "other problems involving spatial decomposition" claim).

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod euler;
pub mod flux;
pub mod kernel;
pub mod mhd;
pub mod physics;
pub mod poisson;
pub mod problems;
pub mod recon;
pub mod reflux;
pub mod stepper;
pub mod subcycle;

pub use ablock_core::geom::Geometry;
pub use ablock_core::partition::Partitioner;
pub use config::{SolverConfig, TimeStepMode};
pub use engine::{ghost_config_for, EngineStats, SweepEngine, SweepSplit};
pub use euler::Euler;
pub use flux::Riemann;
pub use kernel::{compute_rhs_block, compute_rhs_block_fluxes, max_rate_block, FaceFluxStore, Scheme};
pub use reflux::{coarse_fine_fetch_list, reflux_rhs, reflux_state};
pub use mhd::IdealMhd;
pub use physics::Physics;
pub use poisson::{MultigridPoisson, PoissonBc};
pub use recon::{Limiter, Recon};
pub use stepper::{total_conserved, total_conserved_fluid, Stepper, TimeScheme};
pub use subcycle::{SubcycleBackend, SubcycleState};

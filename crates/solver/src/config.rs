//! One construction surface for every executor in the workspace.
//!
//! A [`SolverConfig`] bundles what used to be scattered across positional
//! constructor arguments and per-type builder methods: the physics
//! system, the spatial [`Scheme`], the time integrator, the CFL number,
//! refluxing, the derived [`GhostConfig`], and the [`Metrics`] sink. The
//! serial [`Stepper`](crate::stepper::Stepper), the shared-memory and
//! distributed executors in `ablock-par`, and the AMR driver in
//! `ablock-amr` all consume it unchanged, so a simulation is configured
//! once and handed to whichever executor fits the machine:
//!
//! ```
//! use ablock_solver::{Euler, Scheme, SolverConfig, Stepper};
//! use ablock_obs::Metrics;
//!
//! let cfg = SolverConfig::new(Euler::<2>::new(1.4), Scheme::muscl_rusanov())
//!     .with_cfl(0.35)
//!     .with_metrics(Metrics::recording());
//! let stepper: Stepper<2, _> = Stepper::new(cfg);
//! # let _ = stepper;
//! ```
//!
//! Defaults are derived, not guessed twice: the time integrator matches
//! the reconstruction order (RK2 for MUSCL, forward Euler for first
//! order) and the ghost configuration matches the physics and scheme via
//! [`ghost_config_for`]. Every field stays public and overridable.

use ablock_core::geom::Geometry;
use ablock_core::ghost::GhostConfig;
use ablock_core::partition::Partitioner;
use ablock_obs::Metrics;

use crate::engine::{ghost_config_for, SweepEngine};
use crate::kernel::Scheme;
use crate::physics::Physics;
use crate::recon::Recon;
use crate::stepper::TimeScheme;

/// How a CFL-limited advance distributes the time step over refinement
/// levels (DESIGN.md §17).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TimeStepMode {
    /// Every block advances with the same globally CFL-limited `dt` —
    /// the reference oracle; always correct, wasteful on deep
    /// hierarchies where the finest level dictates `dt` everywhere.
    #[default]
    Global,
    /// Berger–Oliger local time stepping: level ℓ advances with
    /// `dt₀ / 2^(ℓ-ℓ₀)` (two fine steps per coarse step at unit level
    /// jumps), with time-interpolated ghost fills at coarse-fine faces
    /// and per-level flux accumulation feeding the reflux correction.
    Subcycled,
}

/// Complete configuration for one solver instance. See the
/// [module docs](self) for the construction story.
#[derive(Clone, Debug)]
pub struct SolverConfig<P: Physics> {
    /// The physics system being integrated.
    pub physics: P,
    /// The spatial scheme (reconstruction + Riemann solver).
    pub scheme: Scheme,
    /// Time integrator; defaults to match the reconstruction order.
    pub time_scheme: TimeScheme,
    /// Global versus per-level (subcycled) time stepping. Defaults to
    /// [`TimeStepMode::Global`]; the global path is preserved untouched
    /// as the reference oracle for the subcycled one.
    pub time_step_mode: TimeStepMode,
    /// CFL number used by `max_dt`/`run_until` on every executor.
    pub cfl: f64,
    /// Berger–Colella flux correction at coarse/fine faces.
    pub refluxing: bool,
    /// Ghost-exchange configuration; defaults via [`ghost_config_for`].
    pub ghost: GhostConfig,
    /// Overlap interior flux computation with the ghost exchange: the
    /// parallel executors in `ablock-par` split each sweep into interior
    /// and halo sub-sweeps and compute interior fluxes while aggregated
    /// exchanges are in flight, joining before the halo sub-sweep. The
    /// result is bitwise-identical either way (only cross-block execution
    /// order changes); the toggle exists for A/B benchmarking. The serial
    /// stepper ignores it. Defaults to `true`.
    pub comm_overlap: bool,
    /// Observability sink shared by the engine and the executor (null by
    /// default: instrumentation compiles to one branch).
    pub metrics: Metrics,
    /// Block-to-rank partitioner used by the distributed executors (and
    /// by the shared-memory stepper for its sweep order). Defaults to
    /// Hilbert SFC cut points — the paper's re-balancing strategy.
    pub partitioner: Partitioner,
    /// Immersed solid geometry (DESIGN.md §18). When set, every executor
    /// installs it on the grid before its first sweep
    /// ([`BlockGrid::ensure_geometry`](ablock_core::grid::BlockGrid::ensure_geometry)):
    /// blocks carry a solid-cell mask plane, solid faces act as reflective
    /// walls, and solid cells stay bitwise frozen. `None` leaves whatever
    /// the grid already has (including a geometry installed directly via
    /// `BlockGrid::set_geometry`) untouched.
    pub geometry: Option<Geometry>,
}

impl<P: Physics> SolverConfig<P> {
    /// Config with derived defaults: RK2 for MUSCL (else forward Euler),
    /// CFL 0.4, no refluxing, ghost config from physics + scheme, null
    /// metrics.
    pub fn new(physics: P, scheme: Scheme) -> Self {
        let time_scheme = match scheme.recon {
            Recon::FirstOrder => TimeScheme::ForwardEuler,
            Recon::Muscl(_) => TimeScheme::SspRk2,
        };
        let ghost = ghost_config_for(&physics, scheme);
        SolverConfig {
            physics,
            scheme,
            time_scheme,
            time_step_mode: TimeStepMode::Global,
            cfl: 0.4,
            refluxing: false,
            ghost,
            comm_overlap: true,
            metrics: Metrics::null(),
            partitioner: Partitioner::default(),
            geometry: None,
        }
    }

    /// Override the CFL number.
    pub fn with_cfl(mut self, cfl: f64) -> Self {
        self.cfl = cfl;
        self
    }

    /// Override the time integrator.
    pub fn with_time_scheme(mut self, ts: TimeScheme) -> Self {
        self.time_scheme = ts;
        self
    }

    /// Choose global or per-level (subcycled) time stepping. Subcycling
    /// advances level ℓ with `dt₀/2^ℓ` and usually wants refluxing on as
    /// well so coarse-fine face fluxes stay conservative (see
    /// [`crate::subcycle`]).
    pub fn with_time_step_mode(mut self, mode: TimeStepMode) -> Self {
        self.time_step_mode = mode;
        self
    }

    /// Enable flux correction at coarse/fine faces: the scheme becomes
    /// exactly conservative on adaptive grids at the cost of recording
    /// block-face fluxes each stage.
    pub fn with_refluxing(mut self, on: bool) -> Self {
        self.refluxing = on;
        self
    }

    /// Override the derived ghost configuration.
    pub fn with_ghost(mut self, ghost: GhostConfig) -> Self {
        self.ghost = ghost;
        self
    }

    /// Enable or disable comm/compute overlap in the parallel executors
    /// (see the [`SolverConfig::comm_overlap`] field). On by default;
    /// turning it off selects the legacy non-overlapped exchange for A/B
    /// benchmarking — the numerics are bitwise-identical either way.
    pub fn with_comm_overlap(mut self, on: bool) -> Self {
        self.comm_overlap = on;
        self
    }

    /// Install a metrics sink (spans, counters, histograms flow into it
    /// from every layer this config reaches).
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Install an immersed solid geometry: the grid gets per-block solid
    /// masks, solid faces become reflective walls, and geometry-aware
    /// executors keep masks in sync across refine/coarsen/migration.
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Choose the block-to-rank partitioner (e.g.
    /// `Partitioner::sfc(Curve::Hilbert)`, `Partitioner::greedy()`,
    /// `Partitioner::round_robin()`). Must be identical on every rank —
    /// the replicated-topology invariant extends to the partitioner.
    pub fn with_partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Build the [`SweepEngine`] this config describes: ghost config,
    /// flux stores iff refluxing, metrics sink installed.
    pub fn engine<const D: usize>(&self) -> SweepEngine<D> {
        SweepEngine::new(self.ghost.clone())
            .with_flux_stores(self.refluxing)
            .with_metrics(self.metrics.clone())
    }
}

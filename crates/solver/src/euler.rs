//! Compressible Euler equations (ideal gas).
//!
//! Conserved variables: `[ρ, ρu_0 … ρu_{D-1}, E]` (`nvar = D + 2`);
//! primitives: `[ρ, u_0 … u_{D-1}, p]`. The equation of state is a
//! γ-law: `p = (γ-1)(E − ½ρ|u|²)`.

use crate::physics::Physics;

// Row loops below mirror the scalar methods operation for operation —
// the kernels require the batched and scalar paths to agree bitwise.

/// Euler gas dynamics in `D` dimensions.
#[derive(Clone, Debug)]
pub struct Euler<const D: usize> {
    /// Ratio of specific heats.
    pub gamma: f64,
    /// Density floor applied by [`Physics::apply_floors`].
    pub rho_floor: f64,
    /// Pressure floor applied by [`Physics::apply_floors`].
    pub p_floor: f64,
}

impl<const D: usize> Euler<D> {
    /// Standard diatomic gas (γ = 1.4) with tiny positivity floors.
    pub fn new(gamma: f64) -> Self {
        Euler { gamma, rho_floor: 1e-12, p_floor: 1e-12 }
    }

    /// Pressure from a conserved state.
    #[inline]
    pub fn pressure(&self, u: &[f64]) -> f64 {
        let rho = u[0];
        let mut ke = 0.0;
        for d in 0..D {
            ke += u[1 + d] * u[1 + d];
        }
        ke *= 0.5 / rho;
        (self.gamma - 1.0) * (u[1 + D] - ke)
    }

    /// Adiabatic sound speed from a conserved state.
    #[inline]
    pub fn sound_speed(&self, u: &[f64]) -> f64 {
        (self.gamma * self.pressure(u).max(0.0) / u[0]).sqrt()
    }

    /// Index of the energy variable.
    #[inline]
    pub const fn ie() -> usize {
        1 + D
    }
}

impl<const D: usize> Physics for Euler<D> {
    fn nvar(&self) -> usize {
        D + 2
    }

    fn flux(&self, u: &[f64], dir: usize, out: &mut [f64]) {
        let rho = u[0];
        let vd = u[1 + dir] / rho;
        let p = self.pressure(u);
        out[0] = u[1 + dir];
        for d in 0..D {
            out[1 + d] = u[1 + d] * vd;
        }
        out[1 + dir] += p;
        out[1 + D] = (u[1 + D] + p) * vd;
    }

    fn max_speed(&self, u: &[f64], dir: usize) -> f64 {
        let vd = (u[1 + dir] / u[0]).abs();
        vd + self.sound_speed(u)
    }

    fn signal_speeds(&self, u: &[f64], dir: usize) -> (f64, f64) {
        let vd = u[1 + dir] / u[0];
        let a = self.sound_speed(u);
        (vd - a, vd + a)
    }

    fn cons_to_prim(&self, u: &[f64], w: &mut [f64]) {
        w[0] = u[0];
        for d in 0..D {
            w[1 + d] = u[1 + d] / u[0];
        }
        w[1 + D] = self.pressure(u);
    }

    fn prim_to_cons(&self, w: &[f64], u: &mut [f64]) {
        u[0] = w[0];
        let mut ke = 0.0;
        for d in 0..D {
            u[1 + d] = w[0] * w[1 + d];
            ke += w[1 + d] * w[1 + d];
        }
        u[1 + D] = w[1 + D] / (self.gamma - 1.0) + 0.5 * w[0] * ke;
    }

    fn var_names(&self) -> &'static [&'static str] {
        match D {
            1 => &["rho", "mx", "E"],
            2 => &["rho", "mx", "my", "E"],
            _ => &["rho", "mx", "my", "mz", "E"],
        }
    }

    fn vector_components(&self) -> Vec<[usize; 3]> {
        let mut v = [usize::MAX; 3];
        for (d, slot) in v.iter_mut().enumerate().take(D) {
            *slot = 1 + d;
        }
        vec![v]
    }

    fn flux_rows(&self, u: &[f64], su: usize, dir: usize, f: &mut [f64], sf: usize, lanes: usize) {
        for k in 0..lanes {
            let rho = u[k];
            let vd = u[(1 + dir) * su + k] / rho;
            let mut ke = 0.0;
            for d in 0..D {
                ke += u[(1 + d) * su + k] * u[(1 + d) * su + k];
            }
            ke *= 0.5 / rho;
            let p = (self.gamma - 1.0) * (u[(1 + D) * su + k] - ke);
            f[k] = u[(1 + dir) * su + k];
            for d in 0..D {
                f[(1 + d) * sf + k] = u[(1 + d) * su + k] * vd;
            }
            f[(1 + dir) * sf + k] += p;
            f[(1 + D) * sf + k] = (u[(1 + D) * su + k] + p) * vd;
        }
    }

    fn max_speed_rows(&self, u: &[f64], su: usize, dir: usize, out: &mut [f64], lanes: usize) {
        for (k, o) in out.iter_mut().enumerate().take(lanes) {
            let rho = u[k];
            let vd = (u[(1 + dir) * su + k] / rho).abs();
            let mut ke = 0.0;
            for d in 0..D {
                ke += u[(1 + d) * su + k] * u[(1 + d) * su + k];
            }
            ke *= 0.5 / rho;
            let p = (self.gamma - 1.0) * (u[(1 + D) * su + k] - ke);
            *o = vd + (self.gamma * p.max(0.0) / rho).sqrt();
        }
    }

    fn cons_to_prim_rows(&self, u: &[f64], su: usize, w: &mut [f64], sw: usize, lanes: usize) {
        for k in 0..lanes {
            let rho = u[k];
            if rho <= 0.0 {
                continue;
            }
            w[k] = rho;
            let mut ke = 0.0;
            for d in 0..D {
                w[(1 + d) * sw + k] = u[(1 + d) * su + k] / rho;
                ke += u[(1 + d) * su + k] * u[(1 + d) * su + k];
            }
            ke *= 0.5 / rho;
            w[(1 + D) * sw + k] = (self.gamma - 1.0) * (u[(1 + D) * su + k] - ke);
        }
    }

    fn prim_to_cons_rows(&self, w: &[f64], sw: usize, u: &mut [f64], su: usize, lanes: usize) {
        for k in 0..lanes {
            let rho = w[k];
            u[k] = rho;
            let mut ke = 0.0;
            for d in 0..D {
                u[(1 + d) * su + k] = rho * w[(1 + d) * sw + k];
                ke += w[(1 + d) * sw + k] * w[(1 + d) * sw + k];
            }
            u[(1 + D) * su + k] = w[(1 + D) * sw + k] / (self.gamma - 1.0) + 0.5 * rho * ke;
        }
    }

    fn apply_floors(&self, u: &mut [f64]) -> bool {
        let mut clamped = false;
        if u[0] < self.rho_floor {
            u[0] = self.rho_floor;
            clamped = true;
        }
        let p = self.pressure(u);
        if p < self.p_floor {
            // raise E to hit the pressure floor, keeping momentum
            let mut ke = 0.0;
            for d in 0..D {
                ke += u[1 + d] * u[1 + d];
            }
            ke *= 0.5 / u[0];
            u[1 + D] = self.p_floor / (self.gamma - 1.0) + ke;
            clamped = true;
        }
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_cons_roundtrip() {
        let e = Euler::<3>::new(1.4);
        let w = [1.2, 0.3, -0.5, 0.9, 2.5];
        let mut u = [0.0; 5];
        e.prim_to_cons(&w, &mut u);
        let mut w2 = [0.0; 5];
        e.cons_to_prim(&u, &mut w2);
        for v in 0..5 {
            assert!((w[v] - w2[v]).abs() < 1e-14);
        }
    }

    #[test]
    fn pressure_and_sound_speed() {
        let e = Euler::<1>::new(1.4);
        let mut u = [0.0; 3];
        e.prim_to_cons(&[1.0, 0.0, 1.0], &mut u);
        assert!((e.pressure(&u) - 1.0).abs() < 1e-14);
        assert!((e.sound_speed(&u) - 1.4f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn flux_at_rest_is_pressure_only() {
        let e = Euler::<2>::new(1.4);
        let mut u = [0.0; 4];
        e.prim_to_cons(&[2.0, 0.0, 0.0, 3.0], &mut u);
        let mut f = [0.0; 4];
        e.flux(&u, 0, &mut f);
        assert_eq!(f[0], 0.0);
        assert!((f[1] - 3.0).abs() < 1e-14);
        assert_eq!(f[2], 0.0);
        assert_eq!(f[3], 0.0);
    }

    #[test]
    fn flux_consistency_with_exact_advection() {
        // uniform velocity u, uniform p: flux_rho = rho*u
        let e = Euler::<1>::new(1.4);
        let mut u = [0.0; 3];
        e.prim_to_cons(&[1.5, 2.0, 1.0], &mut u);
        let mut f = [0.0; 3];
        e.flux(&u, 0, &mut f);
        assert!((f[0] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn signal_speeds_bracket_max() {
        let e = Euler::<2>::new(1.4);
        let mut u = [0.0; 4];
        e.prim_to_cons(&[1.0, 0.7, -0.2, 0.8], &mut u);
        for dir in 0..2 {
            let (lo, hi) = e.signal_speeds(&u, dir);
            let m = e.max_speed(&u, dir);
            assert!(lo < hi);
            assert!((m - lo.abs().max(hi.abs())).abs() < 1e-13);
        }
    }

    #[test]
    fn floors_restore_positive_pressure() {
        let e = Euler::<1>::new(1.4);
        let mut u = [1.0, 0.5, -10.0]; // negative pressure state
        assert!(e.apply_floors(&mut u));
        assert!(e.pressure(&u) >= e.p_floor * 0.999);
        assert_eq!(u[1], 0.5, "momentum untouched");
    }

    #[test]
    fn floors_restore_positive_density() {
        let e = Euler::<1>::new(1.4);
        let mut u = [-1e-3, 0.0, 1.0];
        assert!(e.apply_floors(&mut u));
        assert!(u[0] >= e.rho_floor);
        // a healthy state is left alone
        let mut ok = [1.0, 0.1, 2.0];
        assert!(!e.apply_floors(&mut ok));
    }

    #[test]
    fn vector_components_momentum() {
        let e = Euler::<2>::new(1.4);
        assert_eq!(e.vector_components(), vec![[1, 2, usize::MAX]]);
        assert_eq!(e.var_names().len(), 4);
    }
}

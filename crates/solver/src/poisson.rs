//! Geometric multigrid for the Poisson equation on block grids.
//!
//! The paper's authors paired block-adaptive grids with "multigrid
//! convergence acceleration" (De Zeeuw's solver lineage), and the paper's
//! closing section argues the data structure serves "a variety of other
//! problems involving spatial decomposition". This module is that claim
//! made concrete: a V-cycle solver for `∇²u = f` whose every level is an
//! ordinary [`BlockGrid`], whose smoother is a per-block kernel over
//! ghosted arrays, and whose intergrid transfers are the same
//! [`restrict_avg`]/[`prolong`] operators the AMR machinery uses.
//!
//! Levels are uniform block lattices: level `k` has `roots · 2^k` blocks
//! per axis of the same `m^D` cells, so a fine block maps onto one
//! quadrant of its coarse parent exactly like AMR coarsening.
//!
//! Boundary conditions: periodic (with mean-zero pinning of the constant
//! mode) or homogeneous Dirichlet via odd ghost reflection (second order
//! for cell-centered grids).

use ablock_core::arena::BlockId;
use ablock_core::field::FieldBlock;
use ablock_core::ghost::{BoundaryCtx, GhostConfig};
use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::index::{IBox, IVec};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::{prolong, restrict_avg, ProlongOrder};
use ablock_obs::Metrics;

use crate::engine::SweepEngine;

/// Solution variable index.
const IU: usize = 0;
/// Right-hand-side variable index.
const IF: usize = 1;
/// Custom-boundary tag for homogeneous Dirichlet ghosts.
const DIRICHLET_TAG: u16 = 0xD1;

/// Boundary condition for the elliptic problem.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoissonBc {
    /// Fully periodic box (`f` must have zero mean; the solver pins the
    /// constant mode).
    Periodic,
    /// `u = 0` on every domain face.
    Dirichlet0,
}

/// Geometric multigrid V-cycle solver. Each level owns a [`SweepEngine`]
/// for its ghost plan and per-block scratch (residual staging, correction
/// prolongation, the Jacobi half-sweep buffer), so V-cycles allocate
/// nothing after the first.
pub struct MultigridPoisson<const D: usize> {
    levels: Vec<BlockGrid<D>>, // [0] = coarsest
    engines: Vec<SweepEngine<D>>,
    bc: PoissonBc,
    metrics: Metrics,
    /// Pre-smoothing sweeps per level.
    pub nu_pre: usize,
    /// Post-smoothing sweeps per level.
    pub nu_post: usize,
    /// Jacobi damping factor.
    pub omega: f64,
    /// Smoothing sweeps on the coarsest level.
    pub nu_coarse: usize,
}

impl<const D: usize> MultigridPoisson<D> {
    /// Build an `nlevels`-deep hierarchy over the unit cube: the coarsest
    /// level has `roots` blocks per axis of `m`-cubed cells.
    pub fn new(roots: IVec<D>, m: i64, nlevels: usize, bc: PoissonBc) -> Self {
        assert!(nlevels >= 1);
        let mut levels = Vec::with_capacity(nlevels);
        let mut engines = Vec::with_capacity(nlevels);
        for k in 0..nlevels {
            let mut r = roots;
            for x in r.iter_mut() {
                *x <<= k;
            }
            let layout = match bc {
                PoissonBc::Periodic => RootLayout::unit(r, Boundary::Periodic),
                PoissonBc::Dirichlet0 => {
                    RootLayout::unit(r, Boundary::Custom(DIRICHLET_TAG))
                }
            };
            let grid = BlockGrid::new(layout, GridParams::new([m; D], 1, 2, 0));
            let mut engine = SweepEngine::new(GhostConfig {
                prolong_order: ProlongOrder::Constant,
                vector_components: Vec::new(),
                corners: false,
            });
            engine.revalidate(&grid);
            levels.push(grid);
            engines.push(engine);
        }
        MultigridPoisson {
            levels,
            engines,
            bc,
            metrics: Metrics::null(),
            nu_pre: 2,
            nu_post: 2,
            omega: 0.8,
            nu_coarse: 40,
        }
    }

    /// Install a metrics sink, shared with every level's engine — the same
    /// sink a [`SolverConfig`](crate::config::SolverConfig) would carry.
    /// Each V-cycle records a `vcycle` span; per-level ghost fills report
    /// through the engines.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        for e in &mut self.engines {
            e.set_metrics(metrics.clone());
        }
        self.metrics = metrics;
        self
    }

    /// The finest grid (read access for sampling the solution).
    pub fn finest(&self) -> &BlockGrid<D> {
        self.levels.last().unwrap()
    }

    /// Cell width on level `k`.
    fn h(&self, k: usize) -> f64 {
        let g = &self.levels[k];
        g.layout().cell_size(0, g.params().block_dims)[0]
    }

    /// Set the right-hand side on the finest level from `f(x)` and zero
    /// the initial guess everywhere.
    pub fn set_rhs(&mut self, f: impl Fn([f64; D]) -> f64) {
        for k in 0..self.levels.len() {
            let g = &mut self.levels[k];
            for id in g.block_ids() {
                g.block_mut(id).field_mut().fill(0.0);
            }
        }
        let k = self.levels.len() - 1;
        let g = &mut self.levels[k];
        let m = g.params().block_dims;
        let layout = g.layout().clone();
        for id in g.block_ids() {
            let key = g.block(id).key();
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                u[IF] = f(layout.cell_center(key, m, c));
            });
        }
        if self.bc == PoissonBc::Periodic {
            self.remove_mean(k, IF);
        }
    }

    fn fill_ghosts(&mut self, k: usize) {
        let dirichlet = self.bc == PoissonBc::Dirichlet0;
        let engine = &mut self.engines[k];
        let grid = &mut self.levels[k];
        let bc = move |ctx: &BoundaryCtx<D>, _c: IVec<D>, u: &mut [f64]| {
            if dirichlet && ctx.tag == DIRICHLET_TAG {
                u[IU] = -ctx.interior[IU]; // odd reflection: u = 0 on face
                u[IF] = ctx.interior[IF];
            }
        };
        engine.fill_ghosts(grid, Some(&bc));
    }

    /// One damped-Jacobi sweep over every block of level `k`.
    fn smooth(&mut self, k: usize) {
        self.fill_ghosts(k);
        let h2 = self.h(k) * self.h(k);
        let omega = self.omega;
        let grid = &mut self.levels[k];
        let m = grid.params().block_dims;
        let inv_diag = 1.0 / (2.0 * D as f64);
        let new = self.engines[k].sweep().prim_scratch;
        new.resize((m.iter().product::<i64>()) as usize, 0.0);
        for id in grid.block_ids() {
            let field = grid.block_mut(id).field_mut();
            for (idx, c) in IBox::from_dims(m).iter().enumerate() {
                let mut nb = 0.0;
                for d in 0..D {
                    let mut cp = c;
                    cp[d] += 1;
                    let mut cm = c;
                    cm[d] -= 1;
                    nb += field.at(cp, IU) + field.at(cm, IU);
                }
                let jac = (nb - h2 * field.at(c, IF)) * inv_diag;
                new[idx] = (1.0 - omega) * field.at(c, IU) + omega * jac;
            }
            for (idx, c) in IBox::from_dims(m).iter().enumerate() {
                *field.at_mut(c, IU) = new[idx];
            }
        }
    }

    /// Max-norm of the residual `f − ∇²u` on level `k`.
    pub fn residual_norm(&mut self, k: usize) -> f64 {
        self.fill_ghosts(k);
        let h2 = self.h(k) * self.h(k);
        let grid = &self.levels[k];
        let m = grid.params().block_dims;
        let mut worst: f64 = 0.0;
        for (_, node) in grid.blocks() {
            let field = node.field();
            for c in IBox::from_dims(m).iter() {
                worst = worst.max(residual_at(field, c, h2).abs());
            }
        }
        worst
    }

    /// Restrict the fine residual into the coarse RHS and zero the coarse
    /// solution. Fine level `k`, coarse level `k-1`.
    fn restrict_residual(&mut self, k: usize) {
        self.fill_ghosts(k);
        let h2 = self.h(k) * self.h(k);
        let m = self.levels[k].params().block_dims;
        // stage fine residuals into the engine's rhs scratch (nvar 2:
        // residual in IF, IU zeroed so restriction also zeroes the coarse
        // initial guess)
        let fine: Vec<(BlockId, BlockKey<D>)> = self.levels[k]
            .block_ids()
            .into_iter()
            .map(|id| (id, self.levels[k].block(id).key()))
            .collect();
        let sw = self.engines[k].sweep();
        for &(id, _) in &fine {
            let node = self.levels[k].block(id);
            let rb = &mut sw.rhs[id.index()];
            for c in IBox::from_dims(m).iter() {
                *rb.at_mut(c, IU) = 0.0;
                *rb.at_mut(c, IF) = residual_at(node.field(), c, h2);
            }
        }
        // zero the coarse level and pour restricted residuals in
        let coarse = &mut self.levels[k - 1];
        for id in coarse.block_ids() {
            coarse.block_mut(id).field_mut().fill(0.0);
        }
        for &(id, fkey) in &fine {
            // fine block (0, c) maps to quadrant (c mod 2) of coarse (0, c/2)
            let ckey = BlockKey::new(0, {
                let mut cc = fkey.coords;
                for x in cc.iter_mut() {
                    *x = x.div_euclid(2);
                }
                cc
            });
            let cid = coarse.find(ckey).expect("coarse lattice block");
            let mut qlo = [0i64; D];
            let mut qhi = [0i64; D];
            let mut q = [0i64; D];
            for d in 0..D {
                let bit = fkey.coords[d].rem_euclid(2);
                qlo[d] = bit * m[d] / 2;
                qhi[d] = (bit + 1) * m[d] / 2;
                q[d] = -bit * m[d];
            }
            restrict_avg(
                coarse.block_mut(cid).field_mut(),
                IBox::new(qlo, qhi),
                &sw.rhs[id.index()],
                q,
                2,
            );
        }
        // restrict_avg moves all nvar: the residual lands in the coarse IF
        // (the RHS) and the zeroed IU lands in the coarse IU (the guess). ✓
    }

    /// Prolong the coarse correction up and add it to the fine solution.
    fn prolong_correction(&mut self, k: usize) {
        let m = self.levels[k].params().block_dims;
        let fine_ids = self.levels[k].block_ids();
        let sw = self.engines[k].sweep();
        for id in fine_ids {
            let fkey = self.levels[k].block(id).key();
            let ckey = BlockKey::new(0, {
                let mut cc = fkey.coords;
                for x in cc.iter_mut() {
                    *x = x.div_euclid(2);
                }
                cc
            });
            let coarse = &self.levels[k - 1];
            let cid = coarse.find(ckey).expect("coarse block");
            let cfield = coarse.block(cid).field();
            // prolong into the engine's stage scratch (fully overwritten)
            let corr = &mut sw.stage[id.index()];
            let mut p = [0i64; D];
            for d in 0..D {
                p[d] = fkey.coords[d].rem_euclid(2) * m[d];
            }
            prolong(
                corr,
                IBox::from_dims(m),
                cfield,
                p,
                [0; D],
                2,
                ProlongOrder::LinearCentral,
                cfield.shape().ghosted_box(),
            );
            let field = self.levels[k].block_mut(id).field_mut();
            for c in IBox::from_dims(m).iter() {
                *field.at_mut(c, IU) += corr.at(c, IU);
            }
        }
    }

    fn remove_mean(&mut self, k: usize, var: usize) {
        let grid = &mut self.levels[k];
        let nblocks = grid.num_blocks() as f64;
        let cells = grid.params().field_shape().interior_cells() as f64;
        let total: f64 = grid.blocks().map(|(_, n)| n.field().interior_sum(var)).sum();
        let mean = total / (nblocks * cells);
        for id in grid.block_ids() {
            grid.block_mut(id).field_mut().for_each_interior(|_, u| u[var] -= mean);
        }
    }

    /// One V-cycle from level `k` down (public for harness/diagnostics;
    /// [`MultigridPoisson::solve`] is the normal entry point).
    pub fn vcycle_public(&mut self, k: usize) {
        let _span = self.metrics.span("vcycle");
        self.vcycle(k);
        if self.bc == PoissonBc::Periodic {
            self.remove_mean(k, IU);
        }
    }

    /// One smoothing sweep on level `k` (public for diagnostics).
    pub fn smooth_public(&mut self, k: usize) {
        self.smooth(k);
    }

    fn vcycle(&mut self, k: usize) {
        if k == 0 {
            for _ in 0..self.nu_coarse {
                self.smooth(0);
            }
            return;
        }
        for _ in 0..self.nu_pre {
            self.smooth(k);
        }
        self.restrict_residual(k);
        self.vcycle(k - 1);
        self.prolong_correction(k);
        for _ in 0..self.nu_post {
            self.smooth(k);
        }
    }

    /// Run V-cycles until the finest residual max-norm falls below `tol`
    /// (or `max_cycles`). Returns `(cycles, final_residual)`.
    pub fn solve(&mut self, tol: f64, max_cycles: usize) -> (usize, f64) {
        let finest = self.levels.len() - 1;
        let mut res = self.residual_norm(finest);
        let mut cycles = 0;
        while res > tol && cycles < max_cycles {
            let _span = self.metrics.span("vcycle");
            self.vcycle(finest);
            if self.bc == PoissonBc::Periodic {
                self.remove_mean(finest, IU);
            }
            res = self.residual_norm(finest);
            cycles += 1;
        }
        (cycles, res)
    }

    /// Max-norm error of the finest solution against `exact(x)`.
    pub fn error_against(&self, exact: impl Fn([f64; D]) -> f64) -> f64 {
        let g = self.finest();
        let m = g.params().block_dims;
        let mut worst: f64 = 0.0;
        for (_, node) in g.blocks() {
            for c in IBox::from_dims(m).iter() {
                let x = g.layout().cell_center(node.key(), m, c);
                worst = worst.max((node.field().at(c, IU) - exact(x)).abs());
            }
        }
        worst
    }
}

/// Residual `f − ∇²u` at one cell (ghosts must be filled).
fn residual_at<const D: usize>(field: &FieldBlock<D>, c: IVec<D>, h2: f64) -> f64 {
    let mut lap = -2.0 * D as f64 * field.at(c, IU);
    for d in 0..D {
        let mut cp = c;
        cp[d] += 1;
        let mut cm = c;
        cm[d] -= 1;
        lap += field.at(cp, IU) + field.at(cm, IU);
    }
    field.at(c, IF) - lap / h2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn periodic_sine_converges_fast() {
        // u = sin(2πx) sin(2πy), f = -8π² u on the periodic unit square
        let mut mg = MultigridPoisson::<2>::new([1, 1], 8, 4, PoissonBc::Periodic); // 64^2
        mg.set_rhs(|x| -8.0 * PI * PI * (2.0 * PI * x[0]).sin() * (2.0 * PI * x[1]).sin());
        let r0 = mg.residual_norm(3);
        let (cycles, res) = mg.solve(r0 * 1e-9, 25);
        assert!(cycles <= 15, "V-cycles: {cycles}");
        assert!(res <= r0 * 1e-9, "residual {res} vs initial {r0}");
        // discretization error ~ h^2: h = 1/64 -> err ~ (2π/64)^2 scale
        let err = mg.error_against(|x| (2.0 * PI * x[0]).sin() * (2.0 * PI * x[1]).sin());
        assert!(err < 5e-3, "solution error {err}");
    }

    #[test]
    fn dirichlet_sine_converges() {
        // u = sin(πx) sin(πy), f = -2π² u, u = 0 on the boundary
        let mut mg = MultigridPoisson::<2>::new([1, 1], 8, 4, PoissonBc::Dirichlet0);
        mg.set_rhs(|x| -2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin());
        let r0 = mg.residual_norm(3);
        let (cycles, res) = mg.solve(r0 * 1e-9, 30);
        assert!(cycles <= 20, "V-cycles: {cycles}");
        assert!(res <= r0 * 1e-9);
        let err = mg.error_against(|x| (PI * x[0]).sin() * (PI * x[1]).sin());
        assert!(err < 5e-3, "solution error {err}");
    }

    #[test]
    fn discretization_error_is_second_order() {
        let err_at = |levels: usize| -> f64 {
            let mut mg = MultigridPoisson::<2>::new([1, 1], 8, levels, PoissonBc::Dirichlet0);
            mg.set_rhs(|x| -2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin());
            mg.solve(1e-11, 40);
            mg.error_against(|x| (PI * x[0]).sin() * (PI * x[1]).sin())
        };
        let e16 = err_at(2); // 16^2
        let e32 = err_at(3); // 32^2
        let rate = (e16 / e32).log2();
        assert!(
            rate > 1.8 && rate < 2.3,
            "Dirichlet Poisson must be 2nd order: rate {rate} ({e16} -> {e32})"
        );
    }

    #[test]
    fn vcycle_convergence_factor_is_gridsize_independent() {
        // textbook multigrid: the per-cycle residual reduction factor is
        // bounded away from 1 independent of resolution
        // asymptotic factor: geometric mean over cycles 3..=6 (the first
        // cycles carry the rough-mode transient)
        let factor = |levels: usize| -> f64 {
            let mut mg = MultigridPoisson::<2>::new([1, 1], 8, levels, PoissonBc::Periodic);
            mg.set_rhs(|x| {
                -8.0 * PI * PI * (2.0 * PI * x[0]).sin() * (2.0 * PI * x[1]).sin()
            });
            let finest = levels - 1;
            for _ in 0..2 {
                mg.vcycle(finest);
                mg.remove_mean(finest, IU);
            }
            let mut r_prev = mg.residual_norm(finest);
            let mut prod = 1.0;
            for _ in 0..4 {
                mg.vcycle(finest);
                mg.remove_mean(finest, IU);
                let r = mg.residual_norm(finest);
                prod *= r / r_prev;
                r_prev = r;
            }
            prod.powf(0.25)
        };
        let f3 = factor(3);
        let f4 = factor(4);
        assert!(f3 < 0.4, "convergence factor too weak: {f3}");
        assert!(f4 < 0.4, "convergence factor at higher resolution: {f4}");
        assert!(
            f4 < f3 + 0.08,
            "factor must not degrade with grid size: {f3} -> {f4}"
        );
    }

    #[test]
    fn multigrid_crushes_plain_jacobi() {
        // same problem, same tolerance: single-level damped Jacobi needs
        // orders of magnitude more sweeps than the V-cycle hierarchy
        let mut mg = MultigridPoisson::<2>::new([1, 1], 8, 3, PoissonBc::Dirichlet0);
        mg.set_rhs(|x| -2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin());
        let finest = 2;
        let r0 = mg.residual_norm(finest);
        let (cycles, _) = mg.solve(r0 * 1e-6, 40);
        let mg_sweeps = cycles * (mg.nu_pre + mg.nu_post); // per finest level

        let mut jac = MultigridPoisson::<2>::new([4, 4], 8, 1, PoissonBc::Dirichlet0); // same 32^2
        jac.set_rhs(|x| -2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin());
        let r0j = jac.residual_norm(0);
        let mut sweeps = 0;
        while jac.residual_norm(0) > r0j * 1e-6 && sweeps < 20_000 {
            jac.smooth(0);
            sweeps += 1;
        }
        assert!(
            sweeps > 10 * mg_sweeps,
            "jacobi {sweeps} sweeps vs multigrid {mg_sweeps} fine-level sweeps"
        );
    }

    #[test]
    fn three_d_poisson_smoke() {
        let mut mg = MultigridPoisson::<3>::new([1, 1, 1], 4, 3, PoissonBc::Periodic); // 16^3
        mg.set_rhs(|x| {
            -12.0 * PI * PI
                * (2.0 * PI * x[0]).sin()
                * (2.0 * PI * x[1]).sin()
                * (2.0 * PI * x[2]).sin()
        });
        let r0 = mg.residual_norm(2);
        let (cycles, res) = mg.solve(r0 * 1e-8, 25);
        assert!(cycles <= 20 && res <= r0 * 1e-8, "3-D: {cycles} cycles, res {res}");
    }

    #[test]
    fn one_d_poisson_smoke() {
        let mut mg = MultigridPoisson::<1>::new([1], 8, 4, PoissonBc::Dirichlet0); // 64
        mg.set_rhs(|x| -PI * PI * (PI * x[0]).sin());
        let (_, res) = mg.solve(1e-10, 30);
        assert!(res < 1e-10);
        let err = mg.error_against(|x| (PI * x[0]).sin());
        assert!(err < 1e-3, "1-D error {err}");
    }
}

//! The physics interface the finite-volume kernels are generic over.
//!
//! A [`Physics`] supplies conserved↔primitive conversions, the physical
//! flux, and characteristic speed estimates; the kernels in
//! [`crate::kernel`] turn any such system into a block update. The two
//! systems the paper's evaluation needs are [`crate::euler::Euler`] (gas
//! dynamics) and [`crate::mhd::IdealMhd`] (the solar-wind workload).

/// Maximum conserved variables any supported system uses (ideal MHD: 8).
pub const MAX_VARS: usize = 8;

/// Lanes per row chunk in the row-batched kernels: the sweep processes
/// x-contiguous runs of at most this many interfaces at a time, so row
/// scratch can live in fixed `MAX_VARS * ROW_CHUNK` stack slabs.
pub const ROW_CHUNK: usize = 64;

/// A hyperbolic system of conservation laws, `∂u/∂t + ∇·F(u) = S(u)`.
///
/// State slices passed in always have length `nvar()`. Implementations
/// must be cheap to clone (they are carried by value into kernels).
pub trait Physics: Clone + Send + Sync + 'static {
    /// Number of conserved variables.
    fn nvar(&self) -> usize;

    /// Physical flux along axis `dir` for conserved state `u`.
    fn flux(&self, u: &[f64], dir: usize, out: &mut [f64]);

    /// Fastest characteristic speed magnitude along `dir` (for CFL and
    /// Rusanov dissipation): `max_k |λ_k|`.
    fn max_speed(&self, u: &[f64], dir: usize) -> f64;

    /// Signal speed bounds `(λ_min, λ_max)` along `dir` (for HLL).
    /// The default derives them from [`Physics::max_speed`] symmetrically.
    fn signal_speeds(&self, u: &[f64], dir: usize) -> (f64, f64) {
        let s = self.max_speed(u, dir);
        (-s, s)
    }

    /// Conserved → primitive variables.
    fn cons_to_prim(&self, u: &[f64], w: &mut [f64]);

    /// Primitive → conserved variables.
    fn prim_to_cons(&self, w: &[f64], u: &mut [f64]);

    /// Human-readable names of the conserved variables (for output).
    fn var_names(&self) -> &'static [&'static str];

    /// Index triples of variables forming spatial vectors (momentum,
    /// magnetic field). Reflecting boundaries flip the normal component.
    fn vector_components(&self) -> Vec<[usize; 3]>;

    /// True if the kernel should add the Powell 8-wave `-(∇·B)(0,B,u,u·B)`
    /// source term (ideal MHD only).
    fn powell_source(&self) -> bool {
        false
    }

    /// Indices `(bx, by, bz)` of the magnetic field components, if any.
    fn b_indices(&self) -> Option<[usize; 3]> {
        None
    }

    /// Clamp a conserved state back into the physically admissible set
    /// (density/pressure floors). Returns true if anything was clamped.
    fn apply_floors(&self, _u: &mut [f64]) -> bool {
        false
    }

    // --- Row-batched forms -------------------------------------------------
    //
    // The SoA kernels hand these methods *variable-major slabs*: variable
    // `v` of lane `k` lives at `slab[v * stride + k]`, so each variable is a
    // stride-1 run over the lanes. The defaults gather every lane and call
    // the scalar method — always correct. Implementations should override
    // them with elementwise loops that perform the *same arithmetic per
    // lane*; the kernels (and the cross-backend differential suite) rely on
    // row and scalar paths being bitwise identical.

    /// Row-batched [`Physics::flux`]: `lanes` states in slab `u` (stride
    /// `su`), fluxes written to slab `f` (stride `sf`).
    fn flux_rows(&self, u: &[f64], su: usize, dir: usize, f: &mut [f64], sf: usize, lanes: usize) {
        let n = self.nvar();
        let mut uc = [0.0; MAX_VARS];
        let mut fc = [0.0; MAX_VARS];
        for k in 0..lanes {
            for v in 0..n {
                uc[v] = u[v * su + k];
            }
            self.flux(&uc[..n], dir, &mut fc[..n]);
            for v in 0..n {
                f[v * sf + k] = fc[v];
            }
        }
    }

    /// Row-batched [`Physics::max_speed`]: one speed per lane into `out`.
    fn max_speed_rows(&self, u: &[f64], su: usize, dir: usize, out: &mut [f64], lanes: usize) {
        let n = self.nvar();
        let mut uc = [0.0; MAX_VARS];
        for (k, o) in out.iter_mut().enumerate().take(lanes) {
            for v in 0..n {
                uc[v] = u[v * su + k];
            }
            *o = self.max_speed(&uc[..n], dir);
        }
    }

    /// Row-batched flux and max signal speed in one call — what a Rusanov
    /// interface needs from each side. The default is the two separate
    /// passes; physics models override it to share the per-lane
    /// subexpressions (density inverse, pressure) the two computations
    /// have in common. Overrides must evaluate every shared term with the
    /// exact expression the separate methods use, so fused and unfused
    /// paths agree bitwise.
    #[allow(clippy::too_many_arguments)]
    fn flux_speed_rows(
        &self,
        u: &[f64],
        su: usize,
        dir: usize,
        f: &mut [f64],
        sf: usize,
        speed: &mut [f64],
        lanes: usize,
    ) {
        self.flux_rows(u, su, dir, f, sf, lanes);
        self.max_speed_rows(u, su, dir, speed, lanes);
    }

    /// Row-batched [`Physics::cons_to_prim`] with the kernel's ghost-corner
    /// guard: lanes whose density (variable 0) is non-positive are left
    /// untouched in `w` (unfilled ghost corners hold zeros; the sweep never
    /// reads them, but the scratch must not be clobbered with NaNs).
    fn cons_to_prim_rows(&self, u: &[f64], su: usize, w: &mut [f64], sw: usize, lanes: usize) {
        let n = self.nvar();
        let mut uc = [0.0; MAX_VARS];
        let mut wc = [0.0; MAX_VARS];
        for k in 0..lanes {
            if u[k] > 0.0 {
                for v in 0..n {
                    uc[v] = u[v * su + k];
                }
                self.cons_to_prim(&uc[..n], &mut wc[..n]);
                for v in 0..n {
                    w[v * sw + k] = wc[v];
                }
            }
        }
    }

    /// Row-batched [`Physics::prim_to_cons`].
    fn prim_to_cons_rows(&self, w: &[f64], sw: usize, u: &mut [f64], su: usize, lanes: usize) {
        let n = self.nvar();
        let mut wc = [0.0; MAX_VARS];
        let mut uc = [0.0; MAX_VARS];
        for k in 0..lanes {
            for v in 0..n {
                wc[v] = w[v * sw + k];
            }
            self.prim_to_cons(&wc[..n], &mut uc[..n]);
            for v in 0..n {
                u[v * su + k] = uc[v];
            }
        }
    }
}

/// Velocity vector from momentum and density (helper for implementations).
#[inline]
pub fn velocity3(rho: f64, m: &[f64]) -> [f64; 3] {
    let inv = 1.0 / rho;
    [m[0] * inv, m.get(1).copied().unwrap_or(0.0) * inv, m.get(2).copied().unwrap_or(0.0) * inv]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Scalar;
    impl Physics for Scalar {
        fn nvar(&self) -> usize {
            1
        }
        fn flux(&self, u: &[f64], _dir: usize, out: &mut [f64]) {
            out[0] = u[0];
        }
        fn max_speed(&self, _u: &[f64], _dir: usize) -> f64 {
            1.0
        }
        fn cons_to_prim(&self, u: &[f64], w: &mut [f64]) {
            w[0] = u[0];
        }
        fn prim_to_cons(&self, w: &[f64], u: &mut [f64]) {
            u[0] = w[0];
        }
        fn var_names(&self) -> &'static [&'static str] {
            &["q"]
        }
        fn vector_components(&self) -> Vec<[usize; 3]> {
            Vec::new()
        }
    }

    #[test]
    fn default_signal_speeds_symmetric() {
        let s = Scalar;
        assert_eq!(s.signal_speeds(&[1.0], 0), (-1.0, 1.0));
        assert!(!s.powell_source());
        assert!(s.b_indices().is_none());
        assert!(!s.apply_floors(&mut [1.0]));
    }

    #[test]
    fn velocity_helper() {
        let v = velocity3(2.0, &[4.0, 6.0, 8.0]);
        assert_eq!(v, [2.0, 3.0, 4.0]);
        let v1 = velocity3(2.0, &[4.0]);
        assert_eq!(v1, [2.0, 0.0, 0.0]);
    }
}

//! Ideal magnetohydrodynamics — the paper's production workload.
//!
//! Conserved variables (always 8, even in 1-D/2-D domains, following the
//! authors' BATS-R-US convention): `[ρ, ρu, ρv, ρw, Bx, By, Bz, E]`;
//! primitives `[ρ, u, v, w, Bx, By, Bz, p]`. Total energy includes the
//! magnetic term: `E = p/(γ-1) + ½ρ|u|² + ½|B|²`.
//!
//! The non-zero divergence of B that creeps into multi-dimensional
//! simulations is controlled with the Powell 8-wave source term
//! `S = −(∇·B) (0, B, u, u·B)` (Powell et al.), which the kernels add when
//! [`crate::physics::Physics::powell_source`] is true — the same approach
//! the paper's group used for the solar-wind runs.

use crate::physics::Physics;

/// Index of density.
pub const IRHO: usize = 0;
/// Index of x-momentum (y, z follow).
pub const IMX: usize = 1;
/// Index of Bx (By, Bz follow).
pub const IBX: usize = 4;
/// Index of total energy.
pub const IE: usize = 7;

/// Ideal MHD with a γ-law equation of state.
#[derive(Clone, Debug)]
pub struct IdealMhd {
    /// Ratio of specific heats.
    pub gamma: f64,
    /// Density floor.
    pub rho_floor: f64,
    /// Pressure floor.
    pub p_floor: f64,
    /// Whether kernels add the Powell 8-wave source (on by default).
    pub powell: bool,
}

impl IdealMhd {
    /// MHD with the given γ, Powell source enabled.
    pub fn new(gamma: f64) -> Self {
        IdealMhd { gamma, rho_floor: 1e-12, p_floor: 1e-12, powell: true }
    }

    /// Gas pressure from a conserved state.
    #[inline]
    pub fn pressure(&self, u: &[f64]) -> f64 {
        let rho = u[IRHO];
        let ke = 0.5 * (u[IMX] * u[IMX] + u[IMX + 1] * u[IMX + 1] + u[IMX + 2] * u[IMX + 2]) / rho;
        let me = 0.5 * (u[IBX] * u[IBX] + u[IBX + 1] * u[IBX + 1] + u[IBX + 2] * u[IBX + 2]);
        (self.gamma - 1.0) * (u[IE] - ke - me)
    }

    /// Fast magnetosonic speed along `dir`.
    #[inline]
    pub fn fast_speed(&self, u: &[f64], dir: usize) -> f64 {
        let rho = u[IRHO];
        let p = self.pressure(u).max(0.0);
        let a2 = self.gamma * p / rho;
        let b2 = (u[IBX] * u[IBX] + u[IBX + 1] * u[IBX + 1] + u[IBX + 2] * u[IBX + 2]) / rho;
        let bn2 = u[IBX + dir] * u[IBX + dir] / rho;
        let s = a2 + b2;
        let disc = (s * s - 4.0 * a2 * bn2).max(0.0).sqrt();
        (0.5 * (s + disc)).max(0.0).sqrt()
    }
}

impl Physics for IdealMhd {
    fn nvar(&self) -> usize {
        8
    }

    fn flux(&self, u: &[f64], dir: usize, out: &mut [f64]) {
        let rho = u[IRHO];
        let inv = 1.0 / rho;
        let v = [u[IMX] * inv, u[IMX + 1] * inv, u[IMX + 2] * inv];
        let b = [u[IBX], u[IBX + 1], u[IBX + 2]];
        let p = self.pressure(u);
        let ptot = p + 0.5 * (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]);
        let vn = v[dir];
        let bn = b[dir];
        let vdotb = v[0] * b[0] + v[1] * b[1] + v[2] * b[2];

        out[IRHO] = rho * vn;
        for k in 0..3 {
            out[IMX + k] = rho * v[k] * vn - bn * b[k];
            out[IBX + k] = vn * b[k] - bn * v[k];
        }
        out[IMX + dir] += ptot;
        out[IBX + dir] = 0.0;
        out[IE] = (u[IE] + ptot) * vn - bn * vdotb;
    }

    fn max_speed(&self, u: &[f64], dir: usize) -> f64 {
        let vn = (u[IMX + dir] / u[IRHO]).abs();
        vn + self.fast_speed(u, dir)
    }

    fn signal_speeds(&self, u: &[f64], dir: usize) -> (f64, f64) {
        let vn = u[IMX + dir] / u[IRHO];
        let cf = self.fast_speed(u, dir);
        (vn - cf, vn + cf)
    }

    fn cons_to_prim(&self, u: &[f64], w: &mut [f64]) {
        let inv = 1.0 / u[IRHO];
        w[IRHO] = u[IRHO];
        for k in 0..3 {
            w[IMX + k] = u[IMX + k] * inv;
            w[IBX + k] = u[IBX + k];
        }
        w[IE] = self.pressure(u);
    }

    fn prim_to_cons(&self, w: &[f64], u: &mut [f64]) {
        u[IRHO] = w[IRHO];
        let mut ke = 0.0;
        let mut me = 0.0;
        for k in 0..3 {
            u[IMX + k] = w[IRHO] * w[IMX + k];
            ke += w[IMX + k] * w[IMX + k];
            u[IBX + k] = w[IBX + k];
            me += w[IBX + k] * w[IBX + k];
        }
        u[IE] = w[IE] / (self.gamma - 1.0) + 0.5 * w[IRHO] * ke + 0.5 * me;
    }

    fn var_names(&self) -> &'static [&'static str] {
        &["rho", "mx", "my", "mz", "bx", "by", "bz", "E"]
    }

    fn vector_components(&self) -> Vec<[usize; 3]> {
        vec![[IMX, IMX + 1, IMX + 2], [IBX, IBX + 1, IBX + 2]]
    }

    fn powell_source(&self) -> bool {
        self.powell
    }

    fn b_indices(&self) -> Option<[usize; 3]> {
        Some([IBX, IBX + 1, IBX + 2])
    }

    // Row loops mirror the scalar methods operation for operation — the
    // kernels require the batched and scalar paths to agree bitwise.

    fn flux_rows(&self, u: &[f64], su: usize, dir: usize, f: &mut [f64], sf: usize, lanes: usize) {
        for k in 0..lanes {
            let rho = u[IRHO * su + k];
            let inv = 1.0 / rho;
            let v = [u[IMX * su + k] * inv, u[(IMX + 1) * su + k] * inv, u[(IMX + 2) * su + k] * inv];
            let b = [u[IBX * su + k], u[(IBX + 1) * su + k], u[(IBX + 2) * su + k]];
            let e = u[IE * su + k];
            let ke = 0.5 * (u[IMX * su + k] * u[IMX * su + k]
                + u[(IMX + 1) * su + k] * u[(IMX + 1) * su + k]
                + u[(IMX + 2) * su + k] * u[(IMX + 2) * su + k])
                / rho;
            let me = 0.5 * (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]);
            let p = (self.gamma - 1.0) * (e - ke - me);
            let ptot = p + 0.5 * (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]);
            let vn = v[dir];
            let bn = b[dir];
            let vdotb = v[0] * b[0] + v[1] * b[1] + v[2] * b[2];
            f[IRHO * sf + k] = rho * vn;
            for j in 0..3 {
                f[(IMX + j) * sf + k] = rho * v[j] * vn - bn * b[j];
                f[(IBX + j) * sf + k] = vn * b[j] - bn * v[j];
            }
            f[(IMX + dir) * sf + k] += ptot;
            f[(IBX + dir) * sf + k] = 0.0;
            f[IE * sf + k] = (e + ptot) * vn - bn * vdotb;
        }
    }

    fn flux_speed_rows(
        &self,
        u: &[f64],
        su: usize,
        dir: usize,
        f: &mut [f64],
        sf: usize,
        speed: &mut [f64],
        lanes: usize,
    ) {
        // one pass per lane: `rho`, `ke`, `me` and the raw pressure are
        // written exactly as in `flux_rows`/`max_speed_rows`, so sharing
        // them keeps both outputs bitwise identical to the two-pass path
        for k in 0..lanes {
            let rho = u[IRHO * su + k];
            let inv = 1.0 / rho;
            let v = [u[IMX * su + k] * inv, u[(IMX + 1) * su + k] * inv, u[(IMX + 2) * su + k] * inv];
            let b = [u[IBX * su + k], u[(IBX + 1) * su + k], u[(IBX + 2) * su + k]];
            let e = u[IE * su + k];
            let ke = 0.5 * (u[IMX * su + k] * u[IMX * su + k]
                + u[(IMX + 1) * su + k] * u[(IMX + 1) * su + k]
                + u[(IMX + 2) * su + k] * u[(IMX + 2) * su + k])
                / rho;
            let me = 0.5 * (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]);
            let p = (self.gamma - 1.0) * (e - ke - me);
            let ptot = p + 0.5 * (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]);
            let vn = v[dir];
            let bn = b[dir];
            let vdotb = v[0] * b[0] + v[1] * b[1] + v[2] * b[2];
            f[IRHO * sf + k] = rho * vn;
            for j in 0..3 {
                f[(IMX + j) * sf + k] = rho * v[j] * vn - bn * b[j];
                f[(IBX + j) * sf + k] = vn * b[j] - bn * v[j];
            }
            f[(IMX + dir) * sf + k] += ptot;
            f[(IBX + dir) * sf + k] = 0.0;
            f[IE * sf + k] = (e + ptot) * vn - bn * vdotb;

            let vn_abs = (u[(IMX + dir) * su + k] / rho).abs();
            let pc = p.max(0.0);
            let a2 = self.gamma * pc / rho;
            let b2 = (u[IBX * su + k] * u[IBX * su + k]
                + u[(IBX + 1) * su + k] * u[(IBX + 1) * su + k]
                + u[(IBX + 2) * su + k] * u[(IBX + 2) * su + k])
                / rho;
            let bn2 = u[(IBX + dir) * su + k] * u[(IBX + dir) * su + k] / rho;
            let s = a2 + b2;
            let disc = (s * s - 4.0 * a2 * bn2).max(0.0).sqrt();
            speed[k] = vn_abs + (0.5 * (s + disc)).max(0.0).sqrt();
        }
    }

    fn max_speed_rows(&self, u: &[f64], su: usize, dir: usize, out: &mut [f64], lanes: usize) {
        for (k, o) in out.iter_mut().enumerate().take(lanes) {
            let rho = u[IRHO * su + k];
            let vn = (u[(IMX + dir) * su + k] / rho).abs();
            let ke = 0.5 * (u[IMX * su + k] * u[IMX * su + k]
                + u[(IMX + 1) * su + k] * u[(IMX + 1) * su + k]
                + u[(IMX + 2) * su + k] * u[(IMX + 2) * su + k])
                / rho;
            let me = 0.5 * (u[IBX * su + k] * u[IBX * su + k]
                + u[(IBX + 1) * su + k] * u[(IBX + 1) * su + k]
                + u[(IBX + 2) * su + k] * u[(IBX + 2) * su + k]);
            let p = ((self.gamma - 1.0) * (u[IE * su + k] - ke - me)).max(0.0);
            let a2 = self.gamma * p / rho;
            let b2 = (u[IBX * su + k] * u[IBX * su + k]
                + u[(IBX + 1) * su + k] * u[(IBX + 1) * su + k]
                + u[(IBX + 2) * su + k] * u[(IBX + 2) * su + k])
                / rho;
            let bn2 = u[(IBX + dir) * su + k] * u[(IBX + dir) * su + k] / rho;
            let s = a2 + b2;
            let disc = (s * s - 4.0 * a2 * bn2).max(0.0).sqrt();
            *o = vn + (0.5 * (s + disc)).max(0.0).sqrt();
        }
    }

    fn cons_to_prim_rows(&self, u: &[f64], su: usize, w: &mut [f64], sw: usize, lanes: usize) {
        for k in 0..lanes {
            let rho = u[IRHO * su + k];
            if rho <= 0.0 {
                continue;
            }
            let inv = 1.0 / rho;
            w[IRHO * sw + k] = rho;
            for j in 0..3 {
                w[(IMX + j) * sw + k] = u[(IMX + j) * su + k] * inv;
                w[(IBX + j) * sw + k] = u[(IBX + j) * su + k];
            }
            let ke = 0.5 * (u[IMX * su + k] * u[IMX * su + k]
                + u[(IMX + 1) * su + k] * u[(IMX + 1) * su + k]
                + u[(IMX + 2) * su + k] * u[(IMX + 2) * su + k])
                / rho;
            let me = 0.5 * (u[IBX * su + k] * u[IBX * su + k]
                + u[(IBX + 1) * su + k] * u[(IBX + 1) * su + k]
                + u[(IBX + 2) * su + k] * u[(IBX + 2) * su + k]);
            w[IE * sw + k] = (self.gamma - 1.0) * (u[IE * su + k] - ke - me);
        }
    }

    fn prim_to_cons_rows(&self, w: &[f64], sw: usize, u: &mut [f64], su: usize, lanes: usize) {
        for k in 0..lanes {
            let rho = w[IRHO * sw + k];
            u[IRHO * su + k] = rho;
            let mut ke = 0.0;
            let mut me = 0.0;
            for j in 0..3 {
                u[(IMX + j) * su + k] = rho * w[(IMX + j) * sw + k];
                ke += w[(IMX + j) * sw + k] * w[(IMX + j) * sw + k];
                u[(IBX + j) * su + k] = w[(IBX + j) * sw + k];
                me += w[(IBX + j) * sw + k] * w[(IBX + j) * sw + k];
            }
            u[IE * su + k] = w[IE * sw + k] / (self.gamma - 1.0) + 0.5 * rho * ke + 0.5 * me;
        }
    }

    fn apply_floors(&self, u: &mut [f64]) -> bool {
        let mut clamped = false;
        if u[IRHO] < self.rho_floor {
            u[IRHO] = self.rho_floor;
            clamped = true;
        }
        if self.pressure(u) < self.p_floor {
            let rho = u[IRHO];
            let ke =
                0.5 * (u[IMX] * u[IMX] + u[IMX + 1] * u[IMX + 1] + u[IMX + 2] * u[IMX + 2]) / rho;
            let me =
                0.5 * (u[IBX] * u[IBX] + u[IBX + 1] * u[IBX + 1] + u[IBX + 2] * u[IBX + 2]);
            u[IE] = self.p_floor / (self.gamma - 1.0) + ke + me;
            clamped = true;
        }
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(rho: f64, v: [f64; 3], b: [f64; 3], p: f64) -> [f64; 8] {
        let m = IdealMhd::new(5.0 / 3.0);
        let w = [rho, v[0], v[1], v[2], b[0], b[1], b[2], p];
        let mut u = [0.0; 8];
        m.prim_to_cons(&w, &mut u);
        u
    }

    #[test]
    fn prim_cons_roundtrip() {
        let m = IdealMhd::new(5.0 / 3.0);
        let w = [1.1, 0.2, -0.4, 0.6, 0.75, 1.0, -0.3, 0.95];
        let mut u = [0.0; 8];
        m.prim_to_cons(&w, &mut u);
        let mut w2 = [0.0; 8];
        m.cons_to_prim(&u, &mut w2);
        for v in 0..8 {
            assert!((w[v] - w2[v]).abs() < 1e-13, "var {v}: {} vs {}", w[v], w2[v]);
        }
    }

    #[test]
    fn reduces_to_euler_when_b_zero() {
        // With B = 0 the MHD flux must equal the Euler flux.
        let m = IdealMhd::new(1.4);
        let e = crate::euler::Euler::<3>::new(1.4);
        let u = state(1.3, [0.4, -0.2, 0.1], [0.0; 3], 0.77);
        let ue = [u[0], u[1], u[2], u[3], u[7]];
        let mut fm = [0.0; 8];
        let mut fe = [0.0; 5];
        for dir in 0..3 {
            m.flux(&u, dir, &mut fm);
            e.flux(&ue, dir, &mut fe);
            assert!((fm[0] - fe[0]).abs() < 1e-13);
            for k in 0..3 {
                assert!((fm[1 + k] - fe[1 + k]).abs() < 1e-13);
            }
            assert!((fm[7] - fe[4]).abs() < 1e-13);
            // B flux identically zero
            for k in 0..3 {
                assert_eq!(fm[IBX + k], 0.0);
            }
        }
    }

    #[test]
    fn fast_speed_exceeds_sound_and_alfven() {
        let m = IdealMhd::new(5.0 / 3.0);
        let u = state(1.0, [0.0; 3], [1.0, 0.5, 0.0], 0.6);
        let a = (m.gamma * 0.6 / 1.0f64).sqrt();
        let ca = 1.0; // |Bx|/sqrt(rho) along x
        let cf = m.fast_speed(&u, 0);
        assert!(cf >= a - 1e-14, "cf {cf} < a {a}");
        assert!(cf >= ca - 1e-14, "cf {cf} < ca {ca}");
    }

    #[test]
    fn fast_speed_perpendicular_is_magnetosonic() {
        // B purely transverse: cf^2 = a^2 + b^2 exactly.
        let m = IdealMhd::new(5.0 / 3.0);
        let u = state(2.0, [0.0; 3], [0.0, 1.2, 0.0], 0.9);
        let a2 = m.gamma * 0.9 / 2.0;
        let b2 = 1.2 * 1.2 / 2.0;
        let cf = m.fast_speed(&u, 0);
        assert!((cf * cf - (a2 + b2)).abs() < 1e-12);
    }

    #[test]
    fn normal_b_flux_is_zero() {
        let m = IdealMhd::new(5.0 / 3.0);
        let u = state(1.0, [0.3, 0.2, -0.7], [0.4, -0.5, 0.6], 1.1);
        let mut f = [0.0; 8];
        for dir in 0..3 {
            m.flux(&u, dir, &mut f);
            assert_eq!(f[IBX + dir], 0.0, "normal B component is advected by sources only");
        }
    }

    #[test]
    fn energy_includes_magnetic_term() {
        let m = IdealMhd::new(5.0 / 3.0);
        let u = state(1.0, [0.0; 3], [2.0, 0.0, 0.0], 1.0);
        // E = p/(g-1) + B^2/2 = 1.5 + 2.0
        assert!((u[IE] - 3.5).abs() < 1e-14);
        assert!((m.pressure(&u) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn floors_recover_negative_pressure() {
        let m = IdealMhd::new(5.0 / 3.0);
        let mut u = state(1.0, [0.1, 0.0, 0.0], [1.0, 0.0, 0.0], 0.5);
        u[IE] -= 10.0; // wreck the energy
        assert!(m.pressure(&u) < 0.0);
        assert!(m.apply_floors(&mut u));
        assert!(m.pressure(&u) > 0.0);
    }
}

//! Stateful grid fuzzing: command vocabulary, generator, executor, and
//! the shrinking fuzz driver.
//!
//! A fuzz case is a `(seed, script)` pair. The **seed** deterministically
//! derives the world (root lattice, boundary conditions, optional root
//! mask, level cap) and, in generation mode, the script itself; the
//! **script** is a sequence of [`FuzzCmd`]s executed against a
//! [`BlockGrid`] and the flat [`RefModel`] side by side. After *every*
//! command the harness runs the full oracle stack:
//!
//! 1. `ablock_core::verify::check_grid` (tiling, pointers, symmetry,
//!    jump constraint, neighbor bounds — from scratch),
//! 2. [`RefModel::agree_with`] (leaf set + independently recomputed
//!    connectivity),
//! 3. epoch bookkeeping (monotone; bumped iff the topology changed),
//! 4. conservation of the volume-weighted totals across structural
//!    commands (transfers are conservative).
//!
//! On failure, [`run_fuzz`] minimizes the script with
//! [`crate::shrink::shrink`] and formats a replay one-liner
//! (`abl_fuzz --replay <D> <seed> '<script>'`) that reproduces the
//! failure byte for byte — scripts are plain text via [`format_script`] /
//! [`parse_script`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ablock_core::arena::BlockId;
use ablock_core::balance::{apply_adapt, plan_adapt, Flag};
use ablock_core::geom::Geometry;
use ablock_core::ghost::GhostExchange;
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::IVec;
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::partition::{cell_weights, inherit_owner, CurveWalk, Partitioner};
use ablock_core::verify::check_grid;
use ablock_io::{
    load_grid, materialize, read_archive, save_grid, write_archive, write_snapshot, NodeHash,
    NodeStore,
};
use ablock_par::ParStepper;
use ablock_solver::{total_conserved, Euler, Scheme, SolverConfig, Stepper, TimeStepMode};

use crate::model::RefModel;
use crate::shrink::shrink;
use crate::{payload_str, subseed, Rng};

/// Transfer used by every structural command (so conservation is checkable).
const TRANSFER: Transfer = Transfer::Conservative(ProlongOrder::LinearMinmod);
/// Fixed, unconditionally stable step size for the `Step` command.
const STEP_DT: f64 = 2e-4;
/// Stream separator: world/script derivation must not consume the same
/// stream as the per-command payloads.
const SETUP_STREAM: u64 = 0x5E70_F5EE_D001_0001;

// ---------------------------------------------------------------------------
// command vocabulary
// ---------------------------------------------------------------------------

/// One fuzzer command. Deliberately dimension-independent (no keys or
/// coordinates inside) so a script shrinks, prints, and parses cleanly;
/// payloads are resolved against the current grid state at execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzCmd {
    /// Refine the `r % num_leaves`-th leaf in sorted-key order (legality
    /// is cross-checked: model and grid must accept or reject for the
    /// same reason).
    Refine(u64),
    /// Coarsen the sibling group of the `r % num_leaves`-th leaf (no-op
    /// at level 0); legality cross-checked like [`FuzzCmd::Refine`].
    Coarsen(u64),
    /// Flag-driven rebalance: every leaf gets a key-derived flag (see
    /// [`flag_for_key`]) and `balance::adapt` applies the set with
    /// cascade; the model resyncs its leaf set and re-verifies
    /// connectivity from scratch.
    Adapt {
        /// Flag-derivation seed.
        seed: u64,
        /// Refine probability in percent (coarsen runs at `2 * density`).
        density: u8,
    },
    /// Rebuild the world with (`masked = true`) or without a seeded root
    /// mask — the paper's non-Cartesian initial configuration — resetting
    /// fields, caches, and epoch tracking.
    Remask {
        /// Mask-derivation seed.
        seed: u64,
        /// Whether to install a mask or clear it.
        masked: bool,
    },
    /// Install the random immersed geometry derived from the seed via
    /// [`random_geometry`] (`seed = 0` clears the geometry instead,
    /// tearing the mask plane back down). Binarization touches only the
    /// mask plane, so every conserved total must survive bit for bit;
    /// afterwards solid cells are frozen and step commands assert they
    /// stay bitwise inert.
    Geometry(u64),
    /// Checkpoint save → load → bitwise comparison, then continue on the
    /// *loaded* grid (so later commands exercise the reconstructed state).
    Checkpoint,
    /// Epoch-cached ghost exchange: rebuild the plan only when stale,
    /// assert the staleness signal matches the epoch, fill, and check
    /// every ghosted cell is finite.
    Ghost,
    /// One RK2 Euler step at a fixed small `dt` through a cached
    /// [`Stepper`] (exercising its plan cache across adapts).
    Step,
    /// One *subcycled* coarsest-level cycle at the same fixed `dt₀`
    /// through a cached refluxing [`TimeStepMode::Subcycled`] stepper,
    /// differentially checked against a **flat reference**: a global-dt
    /// twin (checkpoint clone) advanced the same interval with uniform
    /// finest-level steps `dt₀/2^(ℓmax−ℓmin)`. On a single-level grid the
    /// comparison is **bitwise** (subcycling must reduce to the global
    /// step exactly); on refined grids it is a tight accuracy band, plus
    /// exact conservation of the refluxed totals when every boundary is
    /// periodic. Mixed `T`/`S` schedules exercise both steppers' caches
    /// against the same evolving grid.
    StepSub,
    /// One RK2 Euler step through a cached shared-memory [`ParStepper`]
    /// with `comm_overlap` on (`O`) or off (`N`), differentially checked
    /// **bitwise** against a fresh serial stepper run on a
    /// checkpoint-cloned twin grid; execution continues on the parallel
    /// result, so later commands build on the aggregated path's output.
    StepPar {
        /// Whether the parallel stepper overlaps comm and compute.
        overlap: bool,
    },
    /// Incremental rebalance oracle: plan a partition of the current
    /// grid onto `1 + r % 6` virtual ranks through the harness's
    /// splice-maintained [`CurveWalk`] and persistent by-key owner map,
    /// then assert the incremental path is exact — the spliced walk
    /// equals a from-scratch curve sort, the plan's assignment equals
    /// `Partitioner::partition_grid` recomputed from nothing, and the
    /// migration list is precisely the owner diff (no more, no less).
    Rebalance(u64),
    /// Content-addressed snapshot into the harness's persistent
    /// [`NodeStore`]: write, re-write (must be fully deduplicated and
    /// produce the identical root), materialize back bitwise, archive
    /// roundtrip, then continue on the *materialized* grid. Prior roots
    /// stay resolvable in the append-only store.
    Snapshot,
    /// Test-only invariant break (`BlockGrid::testonly_corrupt_face`);
    /// the oracle stack must catch it on the same command. Never
    /// generated unless [`FuzzConfig::sabotage`] is set.
    Sabotage,
}

/// Format a script as the compact text form accepted by [`parse_script`]:
/// `R<r>` `C<r>` `A<seed>:<density>` `M<seed>:<0|1>` `B<r>` `G<seed>`
/// `K` `G` `S` `T` `O` `N` `P` `X`, space-separated, seeds in hex (bare
/// `G` is the ghost-fill command; `G` with a payload installs a random
/// immersed geometry).
pub fn format_script(cmds: &[FuzzCmd]) -> String {
    let words: Vec<String> = cmds
        .iter()
        .map(|c| match c {
            FuzzCmd::Refine(r) => format!("R{r}"),
            FuzzCmd::Coarsen(r) => format!("C{r}"),
            FuzzCmd::Adapt { seed, density } => format!("A{seed:x}:{density}"),
            FuzzCmd::Remask { seed, masked } => {
                format!("M{seed:x}:{}", u8::from(*masked))
            }
            FuzzCmd::Rebalance(r) => format!("B{r}"),
            FuzzCmd::Geometry(seed) => format!("G{seed:x}"),
            FuzzCmd::Checkpoint => "K".to_string(),
            FuzzCmd::Ghost => "G".to_string(),
            FuzzCmd::Step => "S".to_string(),
            FuzzCmd::StepSub => "T".to_string(),
            FuzzCmd::StepPar { overlap: true } => "O".to_string(),
            FuzzCmd::StepPar { overlap: false } => "N".to_string(),
            FuzzCmd::Snapshot => "P".to_string(),
            FuzzCmd::Sabotage => "X".to_string(),
        })
        .collect();
    words.join(" ")
}

/// Parse the text form produced by [`format_script`].
pub fn parse_script(s: &str) -> Result<Vec<FuzzCmd>, String> {
    let mut out = Vec::new();
    for w in s.split_whitespace() {
        let (head, rest) = w.split_at(1);
        let cmd = match head {
            "R" => FuzzCmd::Refine(
                rest.parse().map_err(|e| format!("bad refine index {rest:?}: {e}"))?,
            ),
            "C" => FuzzCmd::Coarsen(
                rest.parse().map_err(|e| format!("bad coarsen index {rest:?}: {e}"))?,
            ),
            "B" => FuzzCmd::Rebalance(
                rest.parse().map_err(|e| format!("bad rebalance roll {rest:?}: {e}"))?,
            ),
            "A" | "M" => {
                let (a, b) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("missing ':' in {w:?}"))?;
                let seed = u64::from_str_radix(a, 16)
                    .map_err(|e| format!("bad seed {a:?}: {e}"))?;
                if head == "A" {
                    FuzzCmd::Adapt {
                        seed,
                        density: b.parse().map_err(|e| format!("bad density {b:?}: {e}"))?,
                    }
                } else {
                    FuzzCmd::Remask {
                        seed,
                        masked: match b {
                            "0" => false,
                            "1" => true,
                            _ => return Err(format!("bad mask flag {b:?}")),
                        },
                    }
                }
            }
            "K" if rest.is_empty() => FuzzCmd::Checkpoint,
            "G" if rest.is_empty() => FuzzCmd::Ghost,
            "G" => FuzzCmd::Geometry(
                u64::from_str_radix(rest, 16)
                    .map_err(|e| format!("bad geometry seed {rest:?}: {e}"))?,
            ),
            "S" if rest.is_empty() => FuzzCmd::Step,
            "T" if rest.is_empty() => FuzzCmd::StepSub,
            "O" if rest.is_empty() => FuzzCmd::StepPar { overlap: true },
            "N" if rest.is_empty() => FuzzCmd::StepPar { overlap: false },
            "P" if rest.is_empty() => FuzzCmd::Snapshot,
            "X" if rest.is_empty() => FuzzCmd::Sabotage,
            _ => return Err(format!("unknown command {w:?}")),
        };
        out.push(cmd);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// key-derived adapt flags (shared with the differential suite)
// ---------------------------------------------------------------------------

fn key_hash<const D: usize>(seed: u64, key: &BlockKey<D>) -> u64 {
    let mut h = subseed(seed, key.level as u64);
    for d in 0..D {
        h = subseed(h, key.coords[d] as u64);
    }
    h
}

/// Deterministic per-key adapt flag: `Refine` with probability
/// `density`% (below the level cap), else `Coarsen` with probability
/// `2·density`% derived from the *parent* key so complete sibling groups
/// always agree (a coarsen flag on a partial group is a guaranteed veto).
/// Because the flag depends only on the key — never on ids, rank, or
/// iteration order — every backend derives the identical flag set, which
/// is what makes cross-backend differential schedules well-defined.
pub fn flag_for_key<const D: usize>(
    seed: u64,
    key: BlockKey<D>,
    max_level: u8,
    density: u8,
) -> Flag {
    if key.level < max_level && key_hash(seed, &key) % 100 < density as u64 {
        return Flag::Refine;
    }
    if let Some(parent) = key.parent() {
        if key_hash(seed ^ 0xC0A2_5EED, &parent) % 100 < 2 * density as u64 {
            return Flag::Coarsen;
        }
    }
    Flag::Keep
}

// ---------------------------------------------------------------------------
// differential schedules (consumed by the cross-backend suite in par/solver)
// ---------------------------------------------------------------------------

/// One round of a differential schedule: adapt with key-derived flags,
/// then advance a few steps.
#[derive(Clone, Copy, Debug)]
pub struct AdaptRound {
    /// Seed for [`flag_for_key`].
    pub flag_seed: u64,
    /// Refine density in percent.
    pub density: u8,
    /// RK2 steps after the adapt.
    pub steps: u32,
}

/// A full adapt+step schedule, optionally cut by a checkpoint
/// save→load after one of the rounds.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The rounds, executed in order.
    pub rounds: Vec<AdaptRound>,
    /// Round index after which to roundtrip through a checkpoint.
    pub checkpoint_after_round: Option<usize>,
}

/// Generate a random differential schedule: 2–4 rounds of adapt + 1–3
/// steps, with a checkpoint cut point in half the schedules.
pub fn gen_schedule(rng: &mut Rng) -> Schedule {
    let nrounds = rng.usize_in(2, 5);
    let rounds: Vec<AdaptRound> = (0..nrounds)
        .map(|_| AdaptRound {
            flag_seed: rng.next_u64(),
            density: rng.usize_in(10, 35) as u8,
            steps: rng.usize_in(1, 4) as u32,
        })
        .collect();
    let checkpoint_after_round =
        if rng.coin() { Some(rng.usize_below(nrounds)) } else { None };
    Schedule { rounds, checkpoint_after_round }
}

// ---------------------------------------------------------------------------
// world derivation
// ---------------------------------------------------------------------------

/// The seed-derived world a script runs in (stable under shrinking: it
/// depends only on the case seed, never on the script).
#[derive(Clone, Copy, Debug)]
pub struct Setup<const D: usize> {
    /// Root lattice extent per axis.
    pub roots: IVec<D>,
    /// Boundary condition per axis (both faces).
    pub bcs: [Boundary; D],
    /// Level cap (smaller in 3-D to bound case cost).
    pub max_level: u8,
    /// Current root-mask seed (`None` = full lattice); mutated by
    /// [`FuzzCmd::Remask`].
    pub mask_seed: Option<u64>,
}

fn mask_active<const D: usize>(seed: u64, c: IVec<D>) -> bool {
    // Root [0; D] is always active so the lattice never empties.
    let mut h = seed;
    for d in 0..D {
        h = subseed(h, c[d] as u64);
    }
    c == [0; D] || !h.is_multiple_of(4)
}

/// Derive the world for a case seed.
pub fn derive_setup<const D: usize>(seed: u64) -> Setup<D> {
    let mut rng = Rng::new(seed ^ SETUP_STREAM ^ (D as u64) << 32);
    let mut roots = [1i64; D];
    for r in roots.iter_mut() {
        *r = rng.i64_in(1, 3);
    }
    let choices = [Boundary::Periodic, Boundary::Outflow, Boundary::Reflect];
    let mut bcs = [Boundary::Outflow; D];
    for b in bcs.iter_mut() {
        *b = *rng.choose(&choices);
    }
    let max_level = if D >= 3 { 2 } else { 2 + rng.u64_below(2) as u8 };
    let mask_seed = if rng.bool(0.25) { Some(rng.next_u64()) } else { None };
    Setup { roots, bcs, max_level, mask_seed }
}

/// Derive a random immersed geometry from an rng stream: 1–3 primitives
/// (spheres, cuboids, axis-aligned cylinders) unioned together, sized to
/// sit inside the unit domains the fuzz worlds use, occasionally
/// inverted so the fluid runs in pockets through the solid. Primitive
/// centers collapse to `0` on axes at or above `dim`, so lower-
/// dimensional worlds (which sample the geometry on the `y = z = 0`
/// subspace) still intersect the solid. Shared by the fuzzer's
/// `G<seed>` command and the amr property suites.
pub fn random_geometry(rng: &mut Rng, dim: usize) -> Geometry {
    fn primitive(rng: &mut Rng, dim: usize) -> Geometry {
        let mut c = [0.0; 3];
        for (d, x) in c.iter_mut().enumerate() {
            if d < dim {
                *x = rng.f64_in(0.2, 0.8);
            }
        }
        match rng.u64_below(3) {
            0 => Geometry::sphere(c, rng.f64_in(0.08, 0.22)),
            1 => {
                let mut lo = [0.0; 3];
                let mut hi = [0.0; 3];
                for d in 0..3 {
                    let half = rng.f64_in(0.05, 0.2);
                    lo[d] = c[d] - half;
                    hi[d] = c[d] + half;
                }
                Geometry::cuboid(lo, hi)
            }
            _ => Geometry::cylinder(
                rng.u64_below(3) as usize,
                c,
                rng.f64_in(0.06, 0.18),
            ),
        }
    }
    let n = 1 + rng.u64_below(3);
    let mut g = primitive(rng, dim);
    for _ in 1..n {
        g = g.union(primitive(rng, dim));
    }
    if rng.bool(0.15) {
        g = g.invert();
    }
    g
}

fn build_world<const D: usize>(setup: &Setup<D>) -> BlockGrid<D> {
    let mut layout = RootLayout::unit(setup.roots, Boundary::Outflow);
    for d in 0..D {
        layout = layout.with_axis_boundary(d, setup.bcs[d]);
    }
    if let Some(ms) = setup.mask_seed {
        layout = layout.with_mask(|c| mask_active(ms, c));
    }
    let params = GridParams::new([4; D], 2, D + 2, setup.max_level);
    let mut grid = BlockGrid::new(layout, params);
    let euler = Euler::<D>::new(1.4);
    let mut vel = [0.0; D];
    vel[0] = 0.4;
    ablock_solver::problems::advected_gaussian(
        &mut grid,
        &euler,
        vel,
        [0.5; D],
        0.2,
    );
    grid
}

// ---------------------------------------------------------------------------
// execution harness
// ---------------------------------------------------------------------------

struct Harness<const D: usize> {
    setup: Setup<D>,
    grid: BlockGrid<D>,
    model: RefModel<D>,
    exchange: Option<GhostExchange<D>>,
    stepper: Option<Stepper<D, Euler<D>>>,
    /// Cached refluxing subcycled stepper for [`FuzzCmd::StepSub`].
    sub_stepper: Option<Stepper<D, Euler<D>>>,
    par_on: Option<ParStepper<D, Euler<D>>>,
    par_off: Option<ParStepper<D, Euler<D>>>,
    last_epoch: u64,
    /// Splice-maintained curve walk for [`FuzzCmd::Rebalance`]; `None`
    /// until the first rebalance or after a world swap invalidates ids.
    walk: Option<CurveWalk<D>>,
    /// By-key ownership carried between rebalances (the incremental
    /// state the oracle diffs against).
    owner_by_key: HashMap<BlockKey<D>, usize>,
    /// Append-only content-addressed store shared by every
    /// [`FuzzCmd::Snapshot`] in the script (so successive snapshots dedup
    /// against each other).
    store: NodeStore,
    snap_step: u64,
    last_root: Option<NodeHash>,
}

/// Bitwise interior comparison of a reconstructed grid against the
/// original — same leaves, same `f64` bits in every interior cell.
fn assert_bitwise<const D: usize>(
    original: &BlockGrid<D>,
    loaded: &BlockGrid<D>,
    what: &str,
) -> Result<(), String> {
    for (_, node) in original.blocks() {
        let lid = loaded
            .find(node.key())
            .ok_or_else(|| format!("leaf {:?} lost in {what}", node.key()))?;
        let lf = loaded.block(lid).field();
        let of = node.field();
        for c in of.shape().interior_box().iter() {
            for v in 0..of.shape().nvar {
                if of.at(c, v).to_bits() != lf.at(c, v).to_bits() {
                    return Err(format!(
                        "{what} not bitwise at {:?} cell {c:?} var {v}: {:.17e} != {:.17e}",
                        node.key(),
                        of.at(c, v),
                        lf.at(c, v)
                    ));
                }
            }
        }
    }
    if loaded.num_blocks() != original.num_blocks() {
        return Err(format!(
            "{what} changed leaf count: {} -> {}",
            original.num_blocks(),
            loaded.num_blocks()
        ));
    }
    Ok(())
}

fn fresh_stepper<const D: usize>() -> Stepper<D, Euler<D>> {
    Stepper::new(SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov()))
}

impl<const D: usize> Harness<D> {
    fn new(setup: Setup<D>) -> Self {
        let grid = build_world(&setup);
        let model = RefModel::from_grid(&grid);
        let last_epoch = grid.epoch();
        Harness {
            setup,
            grid,
            model,
            exchange: None,
            stepper: None,
            sub_stepper: None,
            par_on: None,
            par_off: None,
            last_epoch,
            walk: None,
            owner_by_key: HashMap::new(),
            store: NodeStore::new(),
            snap_step: 0,
            last_root: None,
        }
    }

    fn totals(&self) -> Vec<f64> {
        (0..D + 2).map(|v| total_conserved(&self.grid, v)).collect()
    }

    fn check_conserved(&self, before: &[f64], what: &str) -> Result<(), String> {
        let all: Vec<usize> = (0..D + 2).collect();
        self.check_conserved_vars(before, &all, what)
    }

    fn check_conserved_vars(
        &self,
        before: &[f64],
        vars: &[usize],
        what: &str,
    ) -> Result<(), String> {
        let after = self.totals();
        for &v in vars {
            let (b, a) = (before[v], after[v]);
            // Relative with an absolute floor at the O(1) domain scale:
            // transverse momentum totals are exactly zero, so a pure
            // relative test would flag denormal-level roundoff.
            let tol = 1e-9 * (1.0 + b.abs());
            if (a - b).abs() > tol {
                return Err(format!(
                    "{what} lost conservation of var {v}: {b:.17e} -> {a:.17e}"
                ));
            }
        }
        Ok(())
    }

    /// Which conserved totals a *step* must preserve in this world.
    /// Periodic faces move nothing out of the domain; reflective walls
    /// (`Reflect` axis boundaries, root-mask holes — [`RootLayout`]'s
    /// `hole_boundary` defaults to `Reflect` — and immersed solid faces)
    /// exert force but pass exactly zero mass and energy, so rho and E
    /// survive; any `Outflow` face conserves nothing. Solid cells are
    /// frozen bitwise, so whole-grid totals conserve iff fluid totals do.
    fn step_conserved_vars(&self) -> Vec<usize> {
        if self
            .setup
            .bcs
            .iter()
            .any(|b| !matches!(b, Boundary::Periodic | Boundary::Reflect))
        {
            return Vec::new();
        }
        let walls = self.setup.mask_seed.is_some()
            || self.grid.layout().geometry.is_some()
            || self.setup.bcs.iter().any(|b| matches!(b, Boundary::Reflect));
        if walls {
            vec![0, D + 1]
        } else {
            (0..D + 2).collect()
        }
    }

    /// Raw state bits of every solid interior cell, in block iteration
    /// order (stable across a non-structural command). Empty without an
    /// installed geometry.
    fn solid_bits(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, node) in self.grid.blocks() {
            let f = node.field();
            if f.mask().is_none() {
                continue;
            }
            for c in f.shape().interior_box().iter() {
                if f.is_solid(c) {
                    for v in 0..f.shape().nvar {
                        out.push(f.at(c, v).to_bits());
                    }
                }
            }
        }
        out
    }

    /// The oracle stack run after every command.
    fn post_check(&mut self, structural: bool) -> Result<(), String> {
        check_grid(&self.grid).map_err(|e| format!("check_grid: {e}"))?;
        self.model
            .agree_with(&self.grid)
            .map_err(|e| format!("model disagreement: {e}"))?;
        let epoch = self.grid.epoch();
        if epoch < self.last_epoch {
            return Err(format!(
                "epoch went backwards: {} -> {epoch}",
                self.last_epoch
            ));
        }
        if !structural && epoch != self.last_epoch {
            return Err(format!(
                "epoch bumped by a non-structural command: {} -> {epoch}",
                self.last_epoch
            ));
        }
        self.last_epoch = epoch;
        Ok(())
    }

    /// Carry the by-key ownership across one structural change, exactly
    /// as the distributed executor does after every adapt (same key keeps
    /// its owner, child inherits parent, coarse parent inherits child 0).
    /// No-op until the first [`FuzzCmd::Rebalance`] seeds the map.
    fn carry_owners(&mut self) {
        if self.owner_by_key.is_empty() {
            return;
        }
        let by_id = inherit_owner(&self.grid, &self.owner_by_key);
        self.owner_by_key =
            self.grid.blocks().map(|(id, n)| (n.key(), by_id[&id])).collect();
    }

    fn nth_leaf(&self, r: u64) -> BlockKey<D> {
        let n = self.model.num_leaves();
        *self
            .model
            .leaves()
            .nth((r % n as u64) as usize)
            .expect("model has at least one leaf")
    }

    fn exec(&mut self, cmd: &FuzzCmd) -> Result<(), String> {
        let mut structural = false;
        match *cmd {
            FuzzCmd::Refine(r) => {
                let key = self.nth_leaf(r);
                let id = self
                    .grid
                    .find(key)
                    .ok_or_else(|| format!("model leaf {key:?} missing from grid"))?;
                match self.model.check_refine(key) {
                    Ok(()) => {
                        let before = self.totals();
                        self.grid
                            .refine(id, TRANSFER)
                            .map_err(|e| format!("grid rejected legal refine {key:?}: {e}"))?;
                        if let Some(w) = self.walk.as_mut() {
                            w.apply_adapt(&[key], &[], &self.grid);
                        }
                        self.carry_owners();
                        self.model.refine(key);
                        self.check_conserved(&before, "refine")?;
                        structural = true;
                    }
                    Err(me) => match self.grid.refine(id, TRANSFER) {
                        Ok(_) => {
                            return Err(format!(
                                "grid accepted refine {key:?} the model rejects ({me:?})"
                            ))
                        }
                        Err(ge) if me.matches_grid_error(&ge) => {}
                        Err(ge) => {
                            return Err(format!(
                                "refine {key:?}: model rejects with {me:?}, grid with {ge}"
                            ))
                        }
                    },
                }
            }
            FuzzCmd::Coarsen(r) => {
                let key = self.nth_leaf(r);
                let Some(parent) = key.parent() else {
                    return self.post_check(false); // level-0 leaf: no-op
                };
                match self.model.check_coarsen(parent) {
                    Ok(()) => {
                        let before = self.totals();
                        self.grid
                            .coarsen(parent, TRANSFER)
                            .map_err(|e| format!("grid rejected legal coarsen {parent:?}: {e}"))?;
                        if let Some(w) = self.walk.as_mut() {
                            w.apply_adapt(&[], &[parent], &self.grid);
                        }
                        self.carry_owners();
                        self.model.coarsen(parent);
                        self.check_conserved(&before, "coarsen")?;
                        structural = true;
                    }
                    Err(me) => match self.grid.coarsen(parent, TRANSFER) {
                        Ok(_) => {
                            return Err(format!(
                                "grid accepted coarsen {parent:?} the model rejects ({me:?})"
                            ))
                        }
                        Err(ge) if me.matches_grid_error(&ge) => {}
                        Err(ge) => {
                            return Err(format!(
                                "coarsen {parent:?}: model rejects with {me:?}, grid with {ge}"
                            ))
                        }
                    },
                }
            }
            FuzzCmd::Adapt { seed, density } => {
                let max_level = self.grid.params().max_level;
                let flags: HashMap<_, _> = self
                    .grid
                    .blocks()
                    .filter_map(|(id, node)| {
                        match flag_for_key(seed, node.key(), max_level, density) {
                            Flag::Keep => None,
                            f => Some((id, f)),
                        }
                    })
                    .collect();
                let epoch_before = self.grid.epoch();
                let before = self.totals();
                // plan/apply split (identical semantics to `balance::adapt`)
                // so the curve walk can splice from the plan, mirroring the
                // distributed executor's adapt path
                let plan = plan_adapt(&self.grid, &flags);
                let report = apply_adapt(&mut self.grid, &plan, TRANSFER);
                if let Some(w) = self.walk.as_mut() {
                    let refined: Vec<BlockKey<D>> =
                        plan.refine.iter().map(|(k, _)| *k).collect();
                    let merged: Vec<BlockKey<D>> = plan
                        .coarsen
                        .iter()
                        .copied()
                        .filter(|p| self.grid.find(*p).is_some())
                        .collect();
                    w.apply_adapt(&refined, &merged, &self.grid);
                }
                self.carry_owners();
                if report.changed() != (self.grid.epoch() != epoch_before) {
                    return Err(format!(
                        "adapt report.changed()={} but epoch {} -> {}",
                        report.changed(),
                        epoch_before,
                        self.grid.epoch()
                    ));
                }
                self.model.resync_leaves(&self.grid);
                self.check_conserved(&before, "adapt")?;
                structural = true;
            }
            FuzzCmd::Remask { seed, masked } => {
                self.setup.mask_seed = if masked { Some(seed) } else { None };
                *self = Harness::new(self.setup);
                return self.post_check(true);
            }
            FuzzCmd::Geometry(seed) => {
                // binarization writes only the mask plane; the physics
                // state (and so every conserved total) must survive bitwise
                let before = self.totals();
                let geometry =
                    (seed != 0).then(|| random_geometry(&mut Rng::new(seed), D));
                self.grid.set_geometry(geometry);
                // the epoch bump (iff the geometry changed) invalidates
                // ghost plans, but the leaf set is untouched — the walk's
                // entries stay exact, so re-stamp rather than rebuild
                if let Some(w) = self.walk.as_mut() {
                    w.sync_epoch(&self.grid);
                }
                self.check_conserved(&before, "set_geometry")?;
                structural = true;
            }
            FuzzCmd::Checkpoint => {
                let mut buf = Vec::new();
                save_grid(&mut buf, &self.grid).map_err(|e| format!("save_grid: {e}"))?;
                let loaded: BlockGrid<D> = load_grid(&mut buf.as_slice())
                    .map_err(|e| format!("load_grid: {e}"))?;
                assert_bitwise(&self.grid, &loaded, "checkpoint roundtrip")?;
                // Continue on the loaded grid. Its epoch counter restarted
                // with the reconstruction, and per-instance caches must not
                // carry over (a fresh grid's epoch can coincidentally match).
                self.grid = loaded;
                self.exchange = None;
                self.stepper = None;
                self.sub_stepper = None;
                self.par_on = None;
                self.par_off = None;
                // ids restarted with the reconstruction; ownership is
                // by-key and survives, the walk rebuilds on next use
                self.walk = None;
                self.model = RefModel::from_grid(&self.grid);
                self.last_epoch = self.grid.epoch();
                return self.post_check(true);
            }
            FuzzCmd::Ghost => {
                let stale = self
                    .exchange
                    .as_ref()
                    .map(|x| !x.is_current(&self.grid))
                    .unwrap_or(true);
                if let Some(x) = &self.exchange {
                    if x.is_current(&self.grid) != (x.epoch() == self.grid.epoch()) {
                        return Err(format!(
                            "ghost cache staleness signal disagrees with epochs \
                             (cache {} vs grid {})",
                            x.epoch(),
                            self.grid.epoch()
                        ));
                    }
                }
                if stale {
                    let cfg =
                        SolverConfig::new(Euler::<D>::new(1.4), Scheme::muscl_rusanov()).ghost;
                    self.exchange = Some(GhostExchange::build(&self.grid, cfg));
                }
                let x = self.exchange.as_ref().expect("just built");
                if !x.is_current(&self.grid) {
                    return Err("freshly built ghost plan is already stale".to_string());
                }
                x.fill(&mut self.grid);
                for (_, node) in self.grid.blocks() {
                    let f = node.field();
                    for c in f.shape().ghosted_box().iter() {
                        for v in 0..f.shape().nvar {
                            if !f.at(c, v).is_finite() {
                                return Err(format!(
                                    "non-finite ghost fill at {:?} cell {c:?} var {v}",
                                    node.key()
                                ));
                            }
                        }
                    }
                }
            }
            FuzzCmd::Step => {
                if self.stepper.is_none() {
                    self.stepper = Some(fresh_stepper());
                }
                let solid_before = self.solid_bits();
                let stepper = self.stepper.as_mut().expect("just set");
                stepper.step_rk2(&mut self.grid, STEP_DT, None);
                if self.solid_bits() != solid_before {
                    return Err("step touched a frozen solid cell".to_string());
                }
                for (_, node) in self.grid.blocks() {
                    let f = node.field();
                    for c in f.shape().interior_box().iter() {
                        for v in 0..f.shape().nvar {
                            if !f.at(c, v).is_finite() {
                                return Err(format!(
                                    "non-finite state after step at {:?} cell {c:?} var {v}",
                                    node.key()
                                ));
                            }
                        }
                    }
                }
            }
            FuzzCmd::StepSub => {
                // Flat reference at the finest dt: a global-dt twin
                // (checkpoint clone, see StepPar for why) advanced over
                // the same interval with 2^(lmax-lmin) uniform steps.
                let mut buf = Vec::new();
                save_grid(&mut buf, &self.grid).map_err(|e| format!("save_grid: {e}"))?;
                let mut twin: BlockGrid<D> =
                    load_grid(&mut buf.as_slice()).map_err(|e| format!("load_grid: {e}"))?;
                let (lmin, lmax) = self
                    .grid
                    .blocks()
                    .fold((u8::MAX, 0u8), |(lo, hi), (_, n)| {
                        (lo.min(n.key().level), hi.max(n.key().level))
                    });
                let nsub = 1u64 << (lmax - lmin);
                // nsub is a power of two, so the finest dt is exact and
                // nsub of them telescope back to exactly STEP_DT
                let fine_dt = STEP_DT / nsub as f64;
                let mut flat = Stepper::new(
                    SolverConfig::new(Euler::<D>::new(1.4), Scheme::muscl_rusanov())
                        .with_refluxing(true),
                );
                for _ in 0..nsub {
                    flat.step_rk2(&mut twin, fine_dt, None);
                }
                let before = self.totals();
                let cons_vars = self.step_conserved_vars();
                let solid_before = self.solid_bits();
                let st = self.sub_stepper.get_or_insert_with(|| {
                    Stepper::new(
                        SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
                            .with_refluxing(true)
                            .with_time_step_mode(TimeStepMode::Subcycled),
                    )
                });
                st.step(&mut self.grid, STEP_DT, None);
                // refluxed subcycling is exactly conservative in whatever
                // the world's boundaries preserve: everything when all
                // faces are periodic; mass and energy when the only
                // non-periodic faces are reflective walls (Reflect axes,
                // root-mask holes, immersed solid faces); nothing once
                // Outflow lets state leave the domain.
                self.check_conserved_vars(&before, &cons_vars, "subcycled step")?;
                if self.solid_bits() != solid_before {
                    return Err("subcycled step touched a frozen solid cell".to_string());
                }
                for (_, node) in self.grid.blocks() {
                    let key = node.key();
                    let tid = twin
                        .find(key)
                        .ok_or_else(|| format!("twin lost leaf {key:?}"))?;
                    let tf = twin.block(tid).field();
                    let f = node.field();
                    for c in f.shape().interior_box().iter() {
                        for v in 0..f.shape().nvar {
                            let (a, b) = (f.at(c, v), tf.at(c, v));
                            if !a.is_finite() {
                                return Err(format!(
                                    "non-finite state after subcycled step at {key:?} \
                                     cell {c:?} var {v}"
                                ));
                            }
                            if nsub == 1 {
                                // single level: subcycling must reduce to
                                // the global step bitwise
                                if a.to_bits() != b.to_bits() {
                                    return Err(format!(
                                        "single-level subcycled step diverged from global \
                                         at {key:?} cell {c:?} var {v}: {a:.17e} != {b:.17e}"
                                    ));
                                }
                            } else if (a - b).abs() > 1e-5 * (1.0 + b.abs()) {
                                return Err(format!(
                                    "subcycled step left the flat finest-dt reference band \
                                     at {key:?} cell {c:?} var {v}: {a:.17e} vs {b:.17e}"
                                ));
                            }
                        }
                    }
                }
            }
            FuzzCmd::StepPar { overlap } => {
                // Serial twin via a bitwise checkpoint clone (grids are
                // deliberately not Clone); its ghost junk is irrelevant —
                // a step fills ghosts from interiors before reading them.
                let mut buf = Vec::new();
                save_grid(&mut buf, &self.grid).map_err(|e| format!("save_grid: {e}"))?;
                let mut twin: BlockGrid<D> =
                    load_grid(&mut buf.as_slice()).map_err(|e| format!("load_grid: {e}"))?;
                fresh_stepper().step_rk2(&mut twin, STEP_DT, None);
                let solid_before = self.solid_bits();
                let par = if overlap { &mut self.par_on } else { &mut self.par_off };
                let par = par.get_or_insert_with(|| {
                    ParStepper::new(
                        SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
                            .with_comm_overlap(overlap),
                    )
                });
                par.step_rk2(&mut self.grid, STEP_DT);
                if self.solid_bits() != solid_before {
                    return Err("parallel step touched a frozen solid cell".to_string());
                }
                for (_, node) in self.grid.blocks() {
                    let key = node.key();
                    let tid = twin
                        .find(key)
                        .ok_or_else(|| format!("twin lost leaf {key:?}"))?;
                    let tf = twin.block(tid).field();
                    let f = node.field();
                    for c in f.shape().interior_box().iter() {
                        for v in 0..f.shape().nvar {
                            let (a, b) = (f.at(c, v), tf.at(c, v));
                            if a.to_bits() != b.to_bits() {
                                return Err(format!(
                                    "parallel step (overlap={overlap}) diverged from serial \
                                     at {key:?} cell {c:?} var {v}: {a:.17e} != {b:.17e}"
                                ));
                            }
                            if !a.is_finite() {
                                return Err(format!(
                                    "non-finite state after parallel step at {key:?} \
                                     cell {c:?} var {v}"
                                ));
                            }
                        }
                    }
                }
            }
            FuzzCmd::Rebalance(r) => {
                let nranks = 1 + (r % 6) as usize;
                let part = Partitioner::default();
                let walk = match self.walk.take() {
                    Some(w) => {
                        if !w.is_current(&self.grid) {
                            return Err(format!(
                                "rebalance found a stale walk (epoch {} vs grid {}): \
                                 a structural command missed its splice",
                                self.grid.epoch() - 1,
                                self.grid.epoch()
                            ));
                        }
                        w
                    }
                    None => CurveWalk::build(&self.grid, part.curve()),
                };
                // oracle 1: the spliced walk is the from-scratch curve sort
                let fresh = CurveWalk::build(&self.grid, part.curve());
                if walk.entries() != fresh.entries() {
                    return Err("spliced walk diverged from from-scratch sort".to_string());
                }
                // first rebalance: no prior owners, everything starts at
                // rank 0 (the diff below then reports the initial spread)
                let prev: HashMap<BlockId, usize> = if self.owner_by_key.is_empty() {
                    HashMap::new()
                } else {
                    inherit_owner(&self.grid, &self.owner_by_key)
                };
                let weights = cell_weights(&self.grid, &walk);
                let plan =
                    part.plan(&walk, &weights, nranks, |id| prev.get(&id).copied().unwrap_or(0));
                // oracle 2: incremental assignment == from-scratch partition
                let scratch: HashMap<BlockId, usize> = part.partition_grid(&self.grid, nranks);
                for (e, &rank) in walk.entries().iter().zip(&plan.assign) {
                    if scratch.get(&e.id) != Some(&rank) {
                        return Err(format!(
                            "incremental rebalance to {nranks} ranks assigns {:?} to {rank}, \
                             from-scratch partition_grid says {:?}",
                            e.key,
                            scratch.get(&e.id)
                        ));
                    }
                }
                // oracle 3: the migration list is the exact owner diff
                let diff: Vec<(BlockKey<D>, usize, usize)> = walk
                    .entries()
                    .iter()
                    .zip(&plan.assign)
                    .filter_map(|(e, &to)| {
                        let from = prev.get(&e.id).copied().unwrap_or(0);
                        (from != to).then_some((e.key, from, to))
                    })
                    .collect();
                let got: Vec<(BlockKey<D>, usize, usize)> =
                    plan.moves.iter().map(|m| (m.key, m.from, m.to)).collect();
                if got != diff {
                    return Err(format!(
                        "plan moves are not the exact owner diff: {} moves vs {} diffs",
                        got.len(),
                        diff.len()
                    ));
                }
                self.owner_by_key =
                    walk.entries().iter().zip(&plan.assign).map(|(e, &r)| (e.key, r)).collect();
                self.walk = Some(walk);
            }
            FuzzCmd::Snapshot => {
                self.snap_step += 1;
                let stats = write_snapshot(&mut self.store, &self.grid, self.snap_step)
                    .map_err(|e| format!("write_snapshot: {e}"))?;
                // idempotence + full dedup: the identical state at the
                // identical step must hash to the identical root and add
                // nothing to the store
                let again = write_snapshot(&mut self.store, &self.grid, self.snap_step)
                    .map_err(|e| format!("re-snapshot: {e}"))?;
                if again.root != stats.root || again.nodes_new != 0 || again.bytes_new != 0 {
                    return Err(format!(
                        "re-snapshot of identical state not fully shared: \
                         {stats:?} then {again:?}"
                    ));
                }
                // the store is append-only: earlier roots stay resolvable
                if let Some(prev) = self.last_root {
                    if !self.store.contains(prev) {
                        return Err(format!("prior snapshot root {prev:?} evicted"));
                    }
                    materialize::<D>(&self.store, prev)
                        .map_err(|e| format!("prior root no longer materializes: {e}"))?;
                }
                let loaded = materialize::<D>(&self.store, stats.root)
                    .map_err(|e| format!("materialize: {e}"))?;
                assert_bitwise(&self.grid, &loaded, "snapshot materialize")?;
                // archive roundtrip: the reachable closure alone must
                // rebuild the same state in a fresh store
                let mut buf = Vec::new();
                write_archive::<D>(&mut buf, &self.store, stats.root)
                    .map_err(|e| format!("write_archive: {e}"))?;
                let (unpacked, root) = read_archive::<D>(&mut buf.as_slice())
                    .map_err(|e| format!("read_archive: {e}"))?;
                if root != stats.root {
                    return Err(format!(
                        "archive changed the root: {:?} -> {root:?}",
                        stats.root
                    ));
                }
                let reloaded = materialize::<D>(&unpacked, root)
                    .map_err(|e| format!("materialize from archive: {e}"))?;
                assert_bitwise(&self.grid, &reloaded, "archive roundtrip")?;
                self.last_root = Some(stats.root);
                // continue on the materialized grid, like Checkpoint
                self.grid = loaded;
                self.exchange = None;
                self.stepper = None;
                self.sub_stepper = None;
                self.par_on = None;
                self.par_off = None;
                self.walk = None;
                self.model = RefModel::from_grid(&self.grid);
                self.last_epoch = self.grid.epoch();
                return self.post_check(true);
            }
            FuzzCmd::Sabotage => {
                self.grid.testonly_corrupt_face(0);
            }
        }
        self.post_check(structural)
    }
}

/// Execute `script` in the world derived from `seed`, running the full
/// oracle stack after every command. Panics inside commands are caught
/// and converted to `Err`, so failures (including `assert!` failures deep
/// in the library) are shrinkable.
pub fn run_script<const D: usize>(seed: u64, script: &[FuzzCmd]) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut h = Harness::<D>::new(derive_setup(seed));
        h.post_check(true).map_err(|e| format!("initial state: {e}"))?;
        for (i, cmd) in script.iter().enumerate() {
            h.exec(cmd)
                .map_err(|e| format!("command {i} ({}): {e}", format_script(&[*cmd])))?;
        }
        Ok(())
    }))
    .unwrap_or_else(|payload| Err(format!("panic: {}", payload_str(payload.as_ref()))))
}

/// Execute `script` like [`run_script`], additionally folding the
/// canonical state digest ([`crate::golden::grid_digest`]) of the grid
/// after the initial build and after every command into one FNV-1a
/// stream value. The stream is layout-independent but bit-exact in the
/// physics state, so it pins the entire arithmetic sequence of a
/// schedule: storage refactors must reproduce recorded streams unchanged
/// (see [`crate::golden::GOLDEN_CASES`]).
pub fn run_script_digest<const D: usize>(
    seed: u64,
    script: &[FuzzCmd],
) -> Result<u64, String> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut h = Harness::<D>::new(derive_setup(seed));
        h.post_check(true).map_err(|e| format!("initial state: {e}"))?;
        let mut stream = crate::golden::Fnv64::new();
        stream.write_u64(crate::golden::grid_digest(&h.grid));
        for (i, cmd) in script.iter().enumerate() {
            h.exec(cmd)
                .map_err(|e| format!("command {i} ({}): {e}", format_script(&[*cmd])))?;
            stream.write_u64(crate::golden::grid_digest(&h.grid));
        }
        Ok(stream.finish())
    }))
    .unwrap_or_else(|payload| Err(format!("panic: {}", payload_str(payload.as_ref()))))
}

/// Generate a random script for the world derived from `seed`.
pub fn gen_script(seed: u64, max_cmds: usize, sabotage: bool) -> Vec<FuzzCmd> {
    let mut rng = Rng::new(seed);
    let len = rng.usize_in(1, max_cmds.max(2));
    let mut script: Vec<FuzzCmd> = (0..len)
        .map(|_| {
            let roll = rng.f64();
            if roll < 0.28 {
                FuzzCmd::Refine(rng.u64_below(4096))
            } else if roll < 0.46 {
                FuzzCmd::Coarsen(rng.u64_below(4096))
            } else if roll < 0.60 {
                FuzzCmd::Adapt {
                    seed: rng.next_u64(),
                    density: rng.usize_in(5, 30) as u8,
                }
            } else if roll < 0.67 {
                FuzzCmd::Rebalance(rng.u64_below(4096))
            } else if roll < 0.74 {
                FuzzCmd::Ghost
            } else if roll < 0.79 {
                FuzzCmd::Step
            } else if roll < 0.84 {
                FuzzCmd::StepSub
            } else if roll < 0.87 {
                FuzzCmd::StepPar { overlap: true }
            } else if roll < 0.90 {
                FuzzCmd::StepPar { overlap: false }
            } else if roll < 0.93 {
                FuzzCmd::Checkpoint
            } else if roll < 0.955 {
                FuzzCmd::Snapshot
            } else if roll < 0.98 {
                FuzzCmd::Remask { seed: rng.next_u64(), masked: rng.coin() }
            } else {
                // seed 0 clears the geometry: exercise mask-plane teardown
                FuzzCmd::Geometry(if rng.bool(0.25) { 0 } else { rng.next_u64() })
            }
        })
        .collect();
    if sabotage {
        let at = rng.usize_below(script.len() + 1);
        script.insert(at, FuzzCmd::Sabotage);
    }
    script
}

// ---------------------------------------------------------------------------
// fuzz driver
// ---------------------------------------------------------------------------

/// Configuration of one fuzz run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Command sequences to run.
    pub sequences: u64,
    /// Base seed; case `i` uses `subseed(base_seed, i)`.
    pub base_seed: u64,
    /// Maximum commands per sequence.
    pub max_cmds: usize,
    /// Insert one [`FuzzCmd::Sabotage`] per sequence (harness self-test:
    /// the run *must* fail and shrink to a tiny script).
    pub sabotage: bool,
    /// Prepend a seed-derived [`FuzzCmd::Geometry`] to every sequence so
    /// the whole script — adapts, steps, checkpoints, oracles — runs on
    /// a masked world. The default mix reaches geometry on only ~2% of
    /// commands; this dedicates a full budget to the immersed path.
    pub masked: bool,
}

impl FuzzConfig {
    /// A quick configuration with the given sequence count.
    pub fn quick(sequences: u64, base_seed: u64) -> Self {
        FuzzConfig { sequences, base_seed, max_cmds: 24, sabotage: false, masked: false }
    }
}

/// A minimized fuzz failure with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Spatial dimension of the failing case.
    pub dim: usize,
    /// Case seed (derives the world and replays the failure).
    pub seed: u64,
    /// Error from the *shrunk* script.
    pub error: String,
    /// Original generated script (text form).
    pub script: String,
    /// Minimized script (text form).
    pub shrunk: String,
    /// Shrunk command count.
    pub shrunk_len: usize,
    /// Copy-pasteable replay one-liner.
    pub replay: String,
}

/// Outcome of [`run_fuzz`].
#[derive(Clone, Debug)]
pub enum FuzzOutcome {
    /// Every sequence passed.
    Pass {
        /// Sequences executed.
        sequences: u64,
        /// Total commands executed.
        commands: u64,
    },
    /// A sequence failed; the failure is already shrunk.
    Fail(Box<FuzzFailure>),
}

/// Run `cfg.sequences` independent command sequences; on the first
/// failure, shrink the script with [`shrink`] and return a
/// [`FuzzFailure`] carrying a replay line.
pub fn run_fuzz<const D: usize>(cfg: &FuzzConfig) -> FuzzOutcome {
    let mut commands = 0u64;
    for i in 0..cfg.sequences {
        let seed = subseed(cfg.base_seed, i);
        let mut script = gen_script(seed, cfg.max_cmds, cfg.sabotage);
        if cfg.masked {
            // `| 1` keeps the seed nonzero — zero would *clear* geometry
            script.insert(0, FuzzCmd::Geometry(seed | 1));
        }
        commands += script.len() as u64;
        let Err(first_error) = run_script::<D>(seed, &script) else {
            continue;
        };
        let shrunk = shrink(&script, |cand| run_script::<D>(seed, cand).is_err());
        let error = run_script::<D>(seed, &shrunk).err().unwrap_or(first_error);
        let shrunk_text = format_script(&shrunk);
        return FuzzOutcome::Fail(Box::new(FuzzFailure {
            dim: D,
            seed,
            error,
            script: format_script(&script),
            shrunk: shrunk_text.clone(),
            shrunk_len: shrunk.len(),
            replay: format!(
                "cargo run --release -p ablock-bench --bin abl_fuzz -- \
                 --replay {D} {seed:#018x} '{shrunk_text}'"
            ),
        }));
    }
    FuzzOutcome::Pass { sequences: cfg.sequences, commands }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_text_roundtrips() {
        let script = vec![
            FuzzCmd::Refine(17),
            FuzzCmd::Coarsen(3),
            FuzzCmd::Adapt { seed: 0xDEAD_BEEF, density: 12 },
            FuzzCmd::Remask { seed: 0xF00, masked: true },
            FuzzCmd::Rebalance(9),
            FuzzCmd::Geometry(0xBEE),
            FuzzCmd::Checkpoint,
            FuzzCmd::Ghost,
            FuzzCmd::Step,
            FuzzCmd::StepSub,
            FuzzCmd::StepPar { overlap: true },
            FuzzCmd::StepPar { overlap: false },
            FuzzCmd::Snapshot,
            FuzzCmd::Sabotage,
        ];
        let text = format_script(&script);
        assert_eq!(parse_script(&text).unwrap(), script);
        assert_eq!(text, "R17 C3 Adeadbeef:12 Mf00:1 B9 Gbee K G S T O N P X");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_script("Q9").is_err());
        assert!(parse_script("A12").is_err()); // missing density
        assert!(parse_script("Mzz:1").is_err());
        assert!(parse_script("Gzz").is_err()); // not a hex geometry seed
        assert!(parse_script("K7").is_err());
        assert!(parse_script("T3").is_err());
        assert!(parse_script("O7").is_err());
        assert!(parse_script("N1").is_err());
        assert!(parse_script("P2").is_err());
        assert!(parse_script("B").is_err()); // missing roll
    }

    #[test]
    fn generation_is_deterministic_and_sabotage_injects_once() {
        let a = gen_script(42, 20, false);
        let b = gen_script(42, 20, false);
        assert_eq!(a, b);
        assert!(!a.contains(&FuzzCmd::Sabotage));
        let s = gen_script(42, 20, true);
        assert_eq!(s.iter().filter(|c| **c == FuzzCmd::Sabotage).count(), 1);
    }

    #[test]
    fn flags_are_key_derived_and_respect_caps() {
        let key = BlockKey::<2>::new(0, [1, 0]);
        // deterministic
        assert_eq!(flag_for_key(7, key, 3, 50), flag_for_key(7, key, 3, 50));
        // a root can never be flagged Coarsen, a capped key never Refine
        for s in 0..200u64 {
            assert_ne!(flag_for_key(s, key, 0, 90), Flag::Refine);
            assert_ne!(flag_for_key(s, key, 3, 90), Flag::Coarsen);
        }
        // at high density some keys do get refined
        let mut refined = 0;
        for s in 0..50u64 {
            if flag_for_key(s, key, 3, 80) == Flag::Refine {
                refined += 1;
            }
        }
        assert!(refined > 10, "density 80 refined only {refined}/50");
    }

    #[test]
    fn empty_script_passes() {
        run_script::<2>(0x5EED_0010, &[]).unwrap();
    }

    #[test]
    fn parallel_step_commands_match_serial() {
        // O and N both run the bitwise differential against a serial twin
        run_script::<2>(
            0x5EED_0012,
            &[
                FuzzCmd::Refine(3),
                FuzzCmd::StepPar { overlap: true },
                FuzzCmd::StepPar { overlap: false },
                FuzzCmd::Step,
                FuzzCmd::Adapt { seed: 0xA11CE, density: 20 },
                FuzzCmd::StepPar { overlap: true },
            ],
        )
        .unwrap();
    }

    #[test]
    fn mixed_subcycled_and_global_steps_interleave() {
        // T and S share the evolving grid but run distinct cached
        // steppers; T is checked against the flat finest-dt reference
        // (bitwise on the initial single-level world, banded once the
        // refines land) and structural commands invalidate both caches.
        run_script::<2>(
            0x5EED_0015,
            &[
                FuzzCmd::StepSub, // single level: bitwise vs global
                FuzzCmd::Refine(3),
                FuzzCmd::StepSub,
                FuzzCmd::Step,
                FuzzCmd::StepSub,
                FuzzCmd::Adapt { seed: 0xA11CE, density: 20 },
                FuzzCmd::StepSub,
                FuzzCmd::Checkpoint,
                FuzzCmd::StepSub,
                FuzzCmd::Step,
            ],
        )
        .unwrap();
    }

    #[test]
    fn snapshot_command_dedups_and_roundtrips() {
        // successive P commands share the persistent store; structural and
        // stepping commands in between change what the snapshots capture
        run_script::<2>(
            0x5EED_0013,
            &[
                FuzzCmd::Refine(3),
                FuzzCmd::Snapshot,
                FuzzCmd::Snapshot,
                FuzzCmd::Step,
                FuzzCmd::Snapshot,
                FuzzCmd::Adapt { seed: 0xA11CE, density: 20 },
                FuzzCmd::Snapshot,
            ],
        )
        .unwrap();
    }

    #[test]
    fn rebalance_command_tracks_incremental_ownership() {
        // rebalances interleaved with every structural command class, a
        // rank-count change, and a checkpoint cut (walk rebuild, owner
        // carried by key)
        run_script::<2>(
            0x5EED_0014,
            &[
                FuzzCmd::Rebalance(1), // 2 ranks
                FuzzCmd::Refine(3),
                FuzzCmd::Rebalance(1),
                FuzzCmd::Adapt { seed: 0xA11CE, density: 25 },
                FuzzCmd::Rebalance(3), // 4 ranks
                FuzzCmd::Coarsen(1),
                FuzzCmd::Checkpoint,
                FuzzCmd::Rebalance(11),
                FuzzCmd::Step,
                FuzzCmd::Rebalance(0), // 1 rank: everything collapses home
            ],
        )
        .unwrap();
    }

    #[test]
    fn geometry_command_freezes_solids_across_the_stack() {
        // install a random SDF, push it through every stepper class plus
        // checkpoint/snapshot roundtrips and structural commands, clear
        // it again; the per-command oracles (mask invariants via
        // check_grid, solid cells bitwise-inert, conserved totals) do the
        // actual checking
        run_script::<2>(
            0x5EED_0016,
            &[
                FuzzCmd::Geometry(0xD1CE),
                FuzzCmd::Step,
                FuzzCmd::Refine(2),
                FuzzCmd::StepSub,
                FuzzCmd::StepPar { overlap: true },
                FuzzCmd::Checkpoint,
                FuzzCmd::Step,
                FuzzCmd::Adapt { seed: 0xA11CE, density: 20 },
                FuzzCmd::Snapshot,
                FuzzCmd::StepSub,
                FuzzCmd::Geometry(0),
                FuzzCmd::Step,
            ],
        )
        .unwrap();
    }

    #[test]
    fn random_geometries_have_bounded_depth_and_validate() {
        for seed in 1..200u64 {
            for dim in 1..=3 {
                let g = random_geometry(&mut Rng::new(seed), dim);
                assert!(g.validate(), "seed {seed} dim {dim}: {g:?}");
                assert!(g.depth() <= 8, "seed {seed} dim {dim} too deep");
            }
        }
    }

    #[test]
    fn sabotage_alone_fails() {
        let err = run_script::<2>(0x5EED_0011, &[FuzzCmd::Sabotage]).unwrap_err();
        assert!(err.contains("command 0"), "{err}");
    }
}

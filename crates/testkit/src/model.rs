//! A deliberately simple reference model of the adaptive block grid.
//!
//! The production [`BlockGrid`] maintains neighbor pointers
//! *incrementally* on every refine/coarsen — exactly the machinery the
//! fuzzer is trying to break. The [`RefModel`] keeps only a flat set of
//! leaf keys and **recomputes everything from scratch** on demand: face
//! connectivity from key arithmetic plus [`RootLayout::resolve`], and
//! refine/coarsen legality from the key set alone. It shares no code
//! with the grid's pointer maintenance (`recompute_faces`,
//! `collect_leaves_on_face`), so agreement between the two is evidence,
//! not tautology.
//!
//! [`RefModel::agree_with`] is the oracle the command fuzzer calls after
//! every command: leaf sets must match, and every stored face pointer of
//! every block must equal the model's independently recomputed
//! connectivity.

use std::collections::BTreeSet;

use ablock_core::grid::{BlockGrid, FaceConn, GridError};
use ablock_core::index::Face;
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, Resolved, RootLayout};

/// Model-side face connectivity: neighbor *keys* instead of arena ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelConn<const D: usize> {
    /// The face lies on a physical boundary (or a masked-root hole).
    Boundary(Boundary),
    /// Adjacent leaf keys, sorted.
    Keys(Vec<BlockKey<D>>),
}

/// Why the model rejects a refine/coarsen request. Mirrors the variants
/// of [`GridError`] that classify *illegal requests* (stale ids are a
/// grid-side concept the model has no equivalent of).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Refinement would exceed the level cap.
    MaxLevel,
    /// Refinement would break the jump constraint.
    RefineJump,
    /// Coarsening group is not `2^D` complete leaves.
    SiblingsIncomplete,
    /// Coarsening would break the jump constraint.
    CoarsenJump,
}

impl ModelError {
    /// True when `err` is the grid-side classification of this model
    /// error (used to check that grid and model reject for the same
    /// reason, not merely that both reject).
    pub fn matches_grid_error<const D: usize>(self, err: &GridError<D>) -> bool {
        matches!(
            (self, err),
            (ModelError::MaxLevel, GridError::MaxLevel { .. })
                | (ModelError::RefineJump, GridError::RefineJump { .. })
                | (ModelError::SiblingsIncomplete, GridError::SiblingsIncomplete { .. })
                | (ModelError::CoarsenJump, GridError::CoarsenJump { .. })
        )
    }
}

/// Flat-map reference model: a set of leaf keys plus the layout and the
/// two structural parameters legality depends on.
#[derive(Clone, Debug)]
pub struct RefModel<const D: usize> {
    layout: RootLayout<D>,
    max_level: u8,
    max_jump: u8,
    leaves: BTreeSet<BlockKey<D>>,
}

impl<const D: usize> RefModel<D> {
    /// Model mirroring the current leaf set of `grid`.
    pub fn from_grid(grid: &BlockGrid<D>) -> Self {
        RefModel {
            layout: grid.layout().clone(),
            max_level: grid.params().max_level,
            max_jump: grid.params().max_level_jump,
            leaves: grid.blocks().map(|(_, n)| n.key()).collect(),
        }
    }

    /// Number of leaves in the model.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Leaf keys in sorted order.
    pub fn leaves(&self) -> impl Iterator<Item = &BlockKey<D>> {
        self.leaves.iter()
    }

    /// Re-adopt the grid's leaf set (after operations like
    /// `balance::adapt` whose cascade semantics the model does not
    /// reimplement). Connectivity is still checked independently.
    pub fn resync_leaves(&mut self, grid: &BlockGrid<D>) {
        self.leaves = grid.blocks().map(|(_, n)| n.key()).collect();
    }

    /// The leaf covering `key` (the key itself or an ancestor), if any.
    fn covering(&self, key: BlockKey<D>) -> Option<BlockKey<D>> {
        let mut k = key;
        loop {
            if self.leaves.contains(&k) {
                return Some(k);
            }
            k = k.parent()?;
        }
    }

    /// Recompute the connectivity of one face of `key` from the leaf set.
    pub fn face_conn(&self, key: BlockKey<D>, f: Face) -> ModelConn<D> {
        match self.layout.resolve(key.face_neighbor(f)) {
            Resolved::Outside(_, bc) => ModelConn::Boundary(bc),
            Resolved::InDomain(nk) => {
                if let Some(c) = self.covering(nk) {
                    return ModelConn::Keys(vec![c]);
                }
                // Subdivided: descendants of nk whose cells touch the face
                // of nk looking back toward `key` (i.e. side f.opposite()).
                let d = f.dim as usize;
                let mut out: Vec<BlockKey<D>> = self
                    .leaves
                    .iter()
                    .filter(|l| l.level > nk.level && nk.is_ancestor_of_or_eq(l))
                    .filter(|l| {
                        let shift = l.level - nk.level;
                        if f.high {
                            // neighbor is on the +side; its facing side is low
                            l.coords[d] == nk.coords[d] << shift
                        } else {
                            l.coords[d] == ((nk.coords[d] + 1) << shift) - 1
                        }
                    })
                    .copied()
                    .collect();
                out.sort();
                ModelConn::Keys(out)
            }
        }
    }

    /// All leaf neighbors of `key` across every face (deduplicated).
    fn face_neighbor_keys(&self, key: BlockKey<D>) -> Vec<BlockKey<D>> {
        let mut out = Vec::new();
        for f in Face::all::<D>() {
            if let ModelConn::Keys(ks) = self.face_conn(key, f) {
                out.extend(ks);
            }
        }
        out.sort();
        out.dedup();
        out.retain(|k| *k != key); // periodic self-neighbors
        out
    }

    /// Classify a refine request against the model's key set.
    pub fn check_refine(&self, key: BlockKey<D>) -> Result<(), ModelError> {
        assert!(self.leaves.contains(&key), "model.check_refine on a non-leaf {key:?}");
        if key.level >= self.max_level {
            return Err(ModelError::MaxLevel);
        }
        let k = self.max_jump as i32;
        for n in self.face_neighbor_keys(key) {
            if (key.level as i32 + 1) - n.level as i32 > k {
                return Err(ModelError::RefineJump);
            }
        }
        Ok(())
    }

    /// Apply a legal refine; call [`RefModel::check_refine`] first.
    pub fn refine(&mut self, key: BlockKey<D>) {
        debug_assert!(self.check_refine(key).is_ok());
        self.leaves.remove(&key);
        for c in key.children() {
            self.leaves.insert(c);
        }
    }

    /// Classify a coarsen request (mirrors the grid's check order: a
    /// missing sibling is reported only if every earlier sibling's
    /// neighbors pass the jump check).
    pub fn check_coarsen(&self, parent: BlockKey<D>) -> Result<(), ModelError> {
        let k = self.max_jump as i32;
        let child_level = parent.level as i32 + 1;
        for ck in parent.children() {
            if !self.leaves.contains(&ck) {
                return Err(ModelError::SiblingsIncomplete);
            }
            for n in self.face_neighbor_keys(ck) {
                if n.level as i32 - (child_level - 1) > k {
                    return Err(ModelError::CoarsenJump);
                }
            }
        }
        Ok(())
    }

    /// Apply a legal coarsen; call [`RefModel::check_coarsen`] first.
    pub fn coarsen(&mut self, parent: BlockKey<D>) {
        debug_assert!(self.check_coarsen(parent).is_ok());
        for ck in parent.children() {
            self.leaves.remove(&ck);
        }
        self.leaves.insert(parent);
    }

    /// The oracle: the grid's leaf set and every stored face pointer must
    /// agree with the model's independently recomputed state.
    pub fn agree_with(&self, grid: &BlockGrid<D>) -> Result<(), String> {
        let grid_leaves: BTreeSet<BlockKey<D>> =
            grid.blocks().map(|(_, n)| n.key()).collect();
        if grid_leaves != self.leaves {
            let only_grid: Vec<_> = grid_leaves.difference(&self.leaves).collect();
            let only_model: Vec<_> = self.leaves.difference(&grid_leaves).collect();
            return Err(format!(
                "leaf sets differ: {} grid-only {only_grid:?}, {} model-only {only_model:?}",
                only_grid.len(),
                only_model.len()
            ));
        }
        for (id, node) in grid.blocks() {
            for f in Face::all::<D>() {
                let model = self.face_conn(node.key(), f);
                let stored = match node.face(f) {
                    FaceConn::Boundary(bc) => ModelConn::Boundary(*bc),
                    FaceConn::Blocks(v) => {
                        let mut ks: Vec<BlockKey<D>> = v
                            .iter()
                            .map(|&n| {
                                grid.try_block(n)
                                    .map(|b| b.key())
                                    .map_err(|e| format!("block {id:?} face {f:?}: {e}"))
                            })
                            .collect::<Result<_, _>>()?;
                        ks.sort();
                        ModelConn::Keys(ks)
                    }
                };
                if stored != model {
                    return Err(format!(
                        "block {:?} face {f:?}: stored {stored:?} != model {model:?}",
                        node.key()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::grid::{GridParams, Transfer};

    fn grid2() -> BlockGrid<2> {
        BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 3),
        )
    }

    #[test]
    fn model_tracks_refine_and_coarsen() {
        let mut g = grid2();
        let mut m = RefModel::from_grid(&g);
        m.agree_with(&g).unwrap();

        let key = BlockKey::new(0, [0, 0]);
        let id = g.find(key).unwrap();
        assert_eq!(m.check_refine(key), Ok(()));
        g.refine(id, Transfer::None).unwrap();
        m.refine(key);
        m.agree_with(&g).unwrap();

        assert_eq!(m.check_coarsen(key), Ok(()));
        g.coarsen(key, Transfer::None).unwrap();
        m.coarsen(key);
        m.agree_with(&g).unwrap();
    }

    #[test]
    fn model_rejections_match_grid_rejections() {
        let mut g = grid2();
        let mut m = RefModel::from_grid(&g);
        let a = BlockKey::new(0, [0, 0]);
        g.refine(g.find(a).unwrap(), Transfer::None).unwrap();
        m.refine(a);
        // refining the child adjacent to a coarse neighbor violates 2:1
        let child = BlockKey::new(1, [1, 0]);
        let err = m.check_refine(child).unwrap_err();
        assert_eq!(err, ModelError::RefineJump);
        let gerr = g.refine(g.find(child).unwrap(), Transfer::None).unwrap_err();
        assert!(err.matches_grid_error(&gerr));
        // coarsening an incomplete group
        let err = m.check_coarsen(BlockKey::new(0, [1, 1])).unwrap_err();
        assert_eq!(err, ModelError::SiblingsIncomplete);
        assert!(err.matches_grid_error(
            &g.coarsen(BlockKey::new(0, [1, 1]), Transfer::None).unwrap_err()
        ));
    }

    #[test]
    fn model_detects_tampered_pointers() {
        let mut g = grid2();
        let m = RefModel::from_grid(&g);
        m.agree_with(&g).unwrap();
        g.testonly_corrupt_face(0);
        assert!(m.agree_with(&g).is_err(), "corruption must not slip past the model");
    }

    #[test]
    fn periodic_wrap_connectivity_agrees() {
        let g = BlockGrid::<2>::new(
            RootLayout::unit([1, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 1, 2),
        );
        RefModel::from_grid(&g).agree_with(&g).unwrap();
    }

    #[test]
    fn masked_layout_connectivity_agrees() {
        let layout = RootLayout::unit([2, 2], Boundary::Outflow)
            .with_mask(|c| c != [1, 1])
            .with_hole_boundary(Boundary::Reflect);
        let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 1, 2));
        let mut m = RefModel::from_grid(&g);
        m.agree_with(&g).unwrap();
        let key = BlockKey::new(0, [0, 1]);
        g.refine(g.find(key).unwrap(), Transfer::None).unwrap();
        m.refine(key);
        m.agree_with(&g).unwrap();
    }
}

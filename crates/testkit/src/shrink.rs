//! Deterministic command-sequence minimization.
//!
//! When a stateful property fails, the raw generated script is rarely the
//! story: most commands are irrelevant noise around the two or three that
//! actually interact. [`shrink`] minimizes a failing sequence with the
//! classic delta-debugging shape — **delete-chunk** passes with halving
//! chunk sizes down to **delete-one**, repeated to a fixpoint — driven by
//! a caller-supplied failure predicate. Everything is deterministic: the
//! same script and predicate always shrink to the same result, so a
//! shrunk script printed in CI replays locally byte for byte.

/// Minimize `script` to a (locally) minimal subsequence that still makes
/// `fails` return `true`.
///
/// The predicate must be deterministic and is assumed to hold for the
/// input script (if it does not, the input is returned unchanged). The
/// result is 1-minimal with respect to single-command deletion: removing
/// any one remaining command makes the failure disappear (unless the
/// sequence shrank to a single command or to empty).
pub fn shrink<C: Clone>(script: &[C], mut fails: impl FnMut(&[C]) -> bool) -> Vec<C> {
    let mut cur: Vec<C> = script.to_vec();
    if !fails(&cur) {
        return cur;
    }
    loop {
        let len_before = cur.len();
        // delete-chunk: try removing windows of size len/2, len/4, ..., 1
        let mut chunk = (cur.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.len() {
                let end = (i + chunk).min(cur.len());
                let mut cand: Vec<C> = Vec::with_capacity(cur.len() - (end - i));
                cand.extend_from_slice(&cur[..i]);
                cand.extend_from_slice(&cur[end..]);
                if fails(&cand) {
                    cur = cand; // keep the deletion; retry the same index
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if cur.len() == len_before {
            return cur; // fixpoint: no single pass removed anything
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_single_culprit() {
        // failure iff the script contains 7
        let script: Vec<u32> = (0..100).collect();
        let out = shrink(&script, |s| s.contains(&7));
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn shrinks_to_interacting_pair() {
        // failure needs both a 3 and a 9, in any positions
        let script = vec![1, 3, 4, 4, 6, 9, 2, 3, 8];
        let out = shrink(&script, |s| s.contains(&3) && s.contains(&9));
        assert_eq!(out.len(), 2);
        assert!(out.contains(&3) && out.contains(&9));
    }

    #[test]
    fn order_dependent_failure_keeps_order() {
        // failure iff some 5 appears before some 2
        let script = vec![9, 5, 7, 1, 2, 5, 2];
        let fails = |s: &[i32]| {
            s.iter()
                .position(|&x| x == 5)
                .is_some_and(|i| s[i..].contains(&2))
        };
        let out = shrink(&script, fails);
        assert_eq!(out, vec![5, 2]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let script = vec![1, 2, 3];
        let out = shrink(&script, |_| false);
        assert_eq!(out, script);
    }

    #[test]
    fn always_failing_shrinks_to_empty() {
        let script = vec![1, 2, 3, 4, 5];
        let out = shrink(&script, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn shrink_is_deterministic() {
        let script: Vec<u32> = (0..50).map(|i| i * 7 % 13).collect();
        let pred = |s: &[u32]| s.iter().filter(|&&x| x > 5).count() >= 3;
        assert_eq!(shrink(&script, pred), shrink(&script, pred));
    }
}

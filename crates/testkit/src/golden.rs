//! Layout-independent golden state digests.
//!
//! A grid digest canonicalizes a [`BlockGrid`] into a single `u64`
//! independent of how block fields are stored in memory: leaves are
//! visited in sorted-key order, each contributing its level, lattice
//! coordinates, and every interior cell in `interior_box()` iteration
//! order with the variable index innermost, hashing the raw `f64` bits.
//! Any two storage layouts that hold the same physics state produce the
//! same digest; any single flipped bit changes it.
//!
//! The digests recorded in [`GOLDEN_CASES`] were captured from seeded
//! fuzzer schedules on the original interleaved layout
//! (AoS, `idx = lin * nvar + v`) and are the reference stream for layout
//! refactors: a new layout must reproduce them bit for bit (see
//! [`crate::commands::run_script_digest`] and the `golden_digests`
//! integration test). Re-record by running the `golden_digests` test
//! binary with `-- --ignored --nocapture` only when a change
//! *intentionally* alters the arithmetic stream.

use ablock_core::grid::BlockGrid;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher (same function family the snapshot layer
/// uses for content addressing, kept separate so testkit stays oracle-
/// independent of `ablock-io` internals).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Canonical layout-independent digest of a grid's physics state: leaves
/// in sorted-key order, per leaf the level + coords, then every interior
/// cell in `interior_box()` iteration order, variables innermost, as raw
/// `f64` bits.
pub fn grid_digest<const D: usize>(grid: &BlockGrid<D>) -> u64 {
    let mut keys: Vec<_> = grid.blocks().map(|(_, node)| node.key()).collect();
    keys.sort();
    let mut h = Fnv64::new();
    for key in keys {
        let id = grid.find(key).expect("key just enumerated from the grid");
        let f = grid.block(id).field();
        h.write(&[key.level]);
        for d in 0..D {
            h.write_u64(key.coords[d] as u64);
        }
        for c in f.shape().interior_box().iter() {
            for v in 0..f.shape().nvar {
                h.write_u64(f.at(c, v).to_bits());
            }
        }
    }
    h.finish()
}

/// One recorded golden schedule: a fuzzer world seed, a script in
/// [`crate::commands::format_script`] text form, and the digest stream
/// value the schedule must reproduce.
#[derive(Clone, Copy, Debug)]
pub struct GoldenCase {
    /// Grid dimensionality the case runs in (1, 2, or 3).
    pub dim: usize,
    /// World-derivation seed (see [`crate::commands::derive_setup`]).
    pub seed: u64,
    /// Script text, parseable by [`crate::commands::parse_script`].
    pub script: &'static str,
    /// Expected stream digest from [`crate::commands::run_script_digest`].
    pub digest: u64,
}

/// Golden schedules recorded on the pre-refactor AoS layout. The scripts
/// deliberately mix structural commands (refine/coarsen/adapt), serial
/// and parallel RK2 steps (overlap on and off), ghost fills, checkpoint
/// roundtrips, and content-addressed snapshots, so the stream pins the
/// full hot path — reconstruction, Riemann fluxes, update loops, ghost
/// transfer operators, and both serialization formats.
pub const GOLDEN_CASES: &[GoldenCase] = &[
    GoldenCase {
        dim: 1,
        seed: 0x601D_0001,
        script: "R1 S A2a:30 S O K S G P S",
        digest: 0x0138_5d4c_5c77_2af4,
    },
    GoldenCase {
        dim: 1,
        seed: 0x601D_0002,
        script: "A7:25 S C2 N S K O S",
        digest: 0x5715_6f78_c69d_cabf,
    },
    GoldenCase {
        dim: 2,
        seed: 0x601D_0003,
        script: "A1f:25 S G O R7 S K C3 N P S",
        digest: 0x4008_b10c_0f64_6fe4,
    },
    GoldenCase {
        dim: 2,
        seed: 0x601D_0004,
        script: "R2 R11 S O A3c:20 S P N S K S",
        digest: 0x0523_844e_6acb_e7a7,
    },
    GoldenCase {
        dim: 3,
        seed: 0x601D_0005,
        script: "A9:20 S N P S",
        digest: 0x6521_61bf_56ef_a662,
    },
    GoldenCase {
        dim: 3,
        seed: 0x601D_0006,
        script: "R5 S O K G S",
        digest: 0x2637_d9e9_210d_199a,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::grid::{BlockGrid, GridParams};
    use ablock_core::layout::{Boundary, RootLayout};

    fn small_grid() -> BlockGrid<2> {
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 1], Boundary::Periodic),
            GridParams::new([4, 4], 2, 3, 2),
        );
        let mut x = 0.0;
        for (_, node) in g.blocks_mut() {
            node.field_mut().for_each_interior(|_, u| {
                for v in u.iter_mut() {
                    x += 1.0;
                    *v = x;
                }
            });
        }
        g
    }

    #[test]
    fn digest_is_deterministic_and_bit_sensitive() {
        let g = small_grid();
        let d0 = grid_digest(&g);
        assert_eq!(d0, grid_digest(&g));

        let mut g2 = small_grid();
        let id = g2.block_ids()[0];
        let c = g2.block(id).field().shape().interior_box().lo;
        let old = g2.block(id).field().at(c, 0);
        *g2.block_mut(id).field_mut().at_mut(c, 0) = f64::from_bits(old.to_bits() ^ 1);
        assert_ne!(d0, grid_digest(&g2), "single flipped mantissa bit must change digest");
    }

    #[test]
    fn digest_ignores_ghost_cells() {
        let g = small_grid();
        let d0 = grid_digest(&g);
        let mut g2 = small_grid();
        for (_, node) in g2.blocks_mut() {
            let f = node.field_mut();
            let interior = f.shape().interior_box();
            for c in f.shape().ghosted_box().iter() {
                if !interior.contains(c) {
                    *f.at_mut(c, 0) = 1e300;
                }
            }
        }
        assert_eq!(d0, grid_digest(&g2), "ghost cells must not enter the digest");
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a 64 published test vector: "a" -> 0xaf63dc4c8601ec8c
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}

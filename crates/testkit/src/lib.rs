//! # ablock-testkit — dependency-free test utilities
//!
//! The container this workspace builds in has no access to crates.io, so
//! the usual suspects (`rand`, `proptest`, `criterion`) are rebuilt here
//! in miniature:
//!
//! * [`Rng`] — a seeded SplitMix64 generator with the handful of sampling
//!   helpers the test suite needs. Fully deterministic: the same seed
//!   always yields the same stream on every platform.
//! * [`cases`] — a property-test case runner: derives one sub-seed per
//!   case, runs the property, and on failure re-raises the panic with the
//!   failing case seed prepended so the case can be replayed in isolation
//!   (set `ABL_CASE_SEED=<seed>` to run exactly that case).
//! * [`Bench`] — a tiny fixed-iteration timing harness for the
//!   `harness = false` benchmark binaries.
//!
//! On top of those sit the stateful verification layers (DESIGN.md §12):
//!
//! * [`model`] — a flat reference model of the block grid with
//!   independently recomputed connectivity and legality checks.
//! * [`commands`] — the fuzzer command vocabulary, generator, and the
//!   grid/model lockstep executor with a full oracle stack per command.
//! * [`mod@shrink`] — deterministic delta-debugging of failing scripts.
//! * [`golden`] — layout-independent state digests and the recorded
//!   golden schedule streams that pin the arithmetic of seeded runs
//!   across storage-layout refactors.

#![warn(missing_docs)]

pub mod commands;
pub mod golden;
pub mod model;
pub mod shrink;

pub use commands::{
    derive_setup, flag_for_key, format_script, gen_schedule, gen_script, parse_script,
    random_geometry, run_fuzz, run_script, run_script_digest, AdaptRound, FuzzCmd,
    FuzzConfig, FuzzFailure, FuzzOutcome, Schedule,
};
pub use golden::{grid_digest, Fnv64, GoldenCase, GOLDEN_CASES};
pub use model::{ModelConn, ModelError, RefModel};
pub use shrink::shrink;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Seeded SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, needs only a u64 of state, and — crucially
/// for reproducing failures — is trivially portable.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `u64` in `[0, n)`; `n` must be nonzero.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        // multiply-shift; bias is < 2^-53 for the small ranges tests use
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u64_below((hi - lo) as u64) as i64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.i64_in(lo as i64, hi as i64) as usize
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A 50/50 coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.usize_below(xs.len())]
    }
}

/// Derive a decorrelated sub-seed from a base seed and an index.
pub fn subseed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0xA24BAED4963EE407);
    z = (z ^ (z >> 32)).wrapping_mul(0x9FB21C651E98DF25);
    z ^ (z >> 28)
}

/// Run `n` property-test cases. Each case gets a fresh [`Rng`] seeded from
/// `subseed(base_seed, i)`; the closure also receives that seed so failure
/// messages can name it. A panicking case is re-raised with the case seed
/// prepended plus a copy-pasteable `ABL_CASE_SEED=<seed>` replay hint; when
/// that variable is set (hex with optional `0x`, or decimal), only the named
/// case runs — so a CI failure replays locally without editing any test.
pub fn cases<F: FnMut(u64, &mut Rng)>(n: u64, base_seed: u64, f: F) {
    cases_with_replay(n, base_seed, std::env::var("ABL_CASE_SEED").ok().as_deref(), f)
}

/// Parse an `ABL_CASE_SEED` value: hex with an optional `0x` prefix, or
/// decimal.
pub fn parse_case_seed(s: &str) -> Option<u64> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok().or_else(|| u64::from_str_radix(t, 16).ok())
    }
}

/// The `cargo test` invocation that reaches the currently running test
/// binary, for copy-pasteable replay hints. Derived at runtime from the
/// binary path (Cargo's `<target>-<16-hex-hash>` naming) and the
/// `CARGO_PKG_NAME` variable Cargo sets for test executables: a lib
/// unittest binary becomes `cargo test -p <pkg> --lib`, an integration
/// test `cargo test -p <pkg> --test <name>`. Degrades to plain
/// `cargo test` when run outside Cargo.
pub fn replay_command_hint() -> String {
    let pkg = std::env::var("CARGO_PKG_NAME").ok();
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .map(|s| match s.rsplit_once('-') {
            Some((head, tail))
                if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                head.to_string()
            }
            _ => s,
        });
    match (pkg, stem) {
        (Some(pkg), Some(stem)) => {
            if stem.replace('_', "-") == pkg {
                format!("cargo test -p {pkg} --lib")
            } else {
                format!("cargo test -p {pkg} --test {stem}")
            }
        }
        _ => "cargo test".to_string(),
    }
}

/// [`cases`] with the replay override passed explicitly (unit-testable
/// without racing on the process environment).
pub fn cases_with_replay<F: FnMut(u64, &mut Rng)>(
    n: u64,
    base_seed: u64,
    replay: Option<&str>,
    mut f: F,
) {
    let mut run_one = |label: &str, seed: u64| {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            f(seed, &mut rng);
        }));
        if let Err(payload) = result {
            // `.as_ref()` matters: `&payload` would unsize the Box itself
            // into `dyn Any` and every downcast would miss
            let msg = payload_str(payload.as_ref());
            panic!(
                "property case {label} (seed {seed:#018x}) failed: {msg}\n  \
                 replay just this case with: ABL_CASE_SEED={seed:#x} {}",
                replay_command_hint()
            );
        }
    };
    if let Some(spec) = replay {
        let seed = parse_case_seed(spec)
            .unwrap_or_else(|| panic!("unparseable ABL_CASE_SEED {spec:?}"));
        run_one("replay", seed);
        return;
    }
    for i in 0..n {
        run_one(&i.to_string(), subseed(base_seed, i));
    }
}

/// Best-effort stringification of a panic payload.
pub fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Fixed-iteration micro-benchmark timer: warmup, then `iters` timed
/// iterations, reporting mean wall time per iteration.
pub struct Bench {
    name: String,
    warmup: u32,
    iters: u32,
}

/// One benchmark measurement.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean wall time of one iteration.
    pub mean: Duration,
    /// Total wall time of the timed loop.
    pub total: Duration,
    /// Timed iterations.
    pub iters: u32,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_secs_f64() * 1e9 / self.iters as f64
    }

    /// Throughput in elements/second given per-iteration element count.
    pub fn throughput(&self, elements_per_iter: u64) -> f64 {
        elements_per_iter as f64 / self.mean.as_secs_f64()
    }
}

impl Bench {
    /// New benchmark with default 3 warmup and 10 timed iterations.
    pub fn new(name: &str) -> Self {
        Bench { name: name.to_string(), warmup: 3, iters: 10 }
    }

    /// Set the number of timed iterations.
    pub fn iters(mut self, n: u32) -> Self {
        self.iters = n.max(1);
        self
    }

    /// Set the number of warmup iterations.
    pub fn warmup(mut self, n: u32) -> Self {
        self.warmup = n;
        self
    }

    /// Run the closure, print `name: mean ± note` and return the numbers.
    pub fn run<F: FnMut()>(&self, mut f: F) -> Measurement {
        for _ in 0..self.warmup {
            f();
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            f();
        }
        let total = start.elapsed();
        let m = Measurement { mean: total / self.iters, total, iters: self.iters };
        println!("  {:<40} {:>12.3} us/iter", self.name, m.ns_per_iter() / 1e3);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_ranges_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.i64_in(-5, 9);
            assert!((-5..9).contains(&x));
            let u = r.usize_below(3);
            assert!(u < 3);
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rng_f64_covers_range() {
        let mut r = Rng::new(1);
        let xs: Vec<f64> = (0..1000).map(|_| r.f64()).collect();
        assert!(xs.iter().any(|&x| x < 0.1));
        assert!(xs.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn cases_reports_seed_on_failure() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            cases(10, 99, |_, rng| {
                assert!(rng.f64() < 2.0); // never fails
            });
        }));
        assert!(err.is_ok());
        let err = catch_unwind(AssertUnwindSafe(|| {
            cases(10, 99, |_, _| panic!("boom"));
        }));
        let msg = payload_str(err.unwrap_err().as_ref());
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn parse_case_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_case_seed("0x2a"), Some(0x2a));
        assert_eq!(parse_case_seed("0X2A"), Some(0x2a));
        assert_eq!(parse_case_seed("42"), Some(42));
        assert_eq!(parse_case_seed(" deadbeef "), Some(0xdead_beef));
        assert_eq!(parse_case_seed("zz"), None);
    }

    #[test]
    fn replay_env_runs_only_the_named_case() {
        let mut seen = Vec::new();
        cases_with_replay(10, 99, Some("0x2a"), |seed, _| seen.push(seed));
        assert_eq!(seen, vec![0x2a]);
    }

    #[test]
    fn failure_message_carries_replay_hint() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            cases_with_replay(3, 99, None, |_, _| panic!("boom"));
        }));
        let msg = payload_str(err.unwrap_err().as_ref());
        assert!(msg.contains("ABL_CASE_SEED="), "{msg}");
        // the hint names this very binary so the line runs as pasted
        assert!(msg.contains("cargo test"), "{msg}");
        assert!(msg.contains(&replay_command_hint()), "{msg}");
    }

    #[test]
    fn replay_hint_names_this_binary() {
        // under `cargo test` this is the testkit lib unittest binary
        let hint = replay_command_hint();
        assert!(hint.starts_with("cargo test"), "{hint}");
        if std::env::var("CARGO_PKG_NAME").is_ok() {
            assert_eq!(hint, "cargo test -p ablock-testkit --lib", "{hint}");
        }
    }

    #[test]
    fn subseeds_differ() {
        let a = subseed(1, 0);
        let b = subseed(1, 1);
        let c = subseed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

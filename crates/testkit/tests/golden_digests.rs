//! Golden schedule streams: seeded fuzzer scripts whose full state
//! digest stream was recorded on the original AoS block layout. Any
//! storage-layout refactor must reproduce these streams bit for bit —
//! the digests canonicalize leaf order and cell order independent of the
//! in-memory layout, so a mismatch means the *arithmetic* changed, not
//! just the bytes.

use ablock_testkit::{parse_script, run_script_digest, GOLDEN_CASES};

fn run_case(dim: usize, seed: u64, script: &str) -> u64 {
    let cmds = parse_script(script).expect("golden script must parse");
    let r = match dim {
        1 => run_script_digest::<1>(seed, &cmds),
        2 => run_script_digest::<2>(seed, &cmds),
        3 => run_script_digest::<3>(seed, &cmds),
        _ => panic!("unsupported dimension {dim}"),
    };
    r.unwrap_or_else(|e| panic!("golden schedule (D={dim}, seed {seed:#x}) failed: {e}"))
}

#[test]
fn golden_streams_reproduce() {
    for case in GOLDEN_CASES {
        let got = run_case(case.dim, case.seed, case.script);
        assert_eq!(
            got, case.digest,
            "golden stream mismatch for D={} seed {:#x} script {:?}: \
             got {got:#018x}, recorded {:#018x} — the arithmetic stream of \
             the schedule changed",
            case.dim, case.seed, case.script, case.digest
        );
    }
}

#[test]
fn digest_stream_is_deterministic_across_runs() {
    let case = &GOLDEN_CASES[2];
    let a = run_case(case.dim, case.seed, case.script);
    let b = run_case(case.dim, case.seed, case.script);
    assert_eq!(a, b);
}

/// Re-record the table in `crates/testkit/src/golden.rs` after an
/// *intentional* arithmetic change:
/// `cargo test -p ablock-testkit --test golden_digests -- --ignored --nocapture`
#[test]
#[ignore = "recording mode: prints the GOLDEN_CASES digests"]
fn record_golden_digests() {
    for case in GOLDEN_CASES {
        let got = run_case(case.dim, case.seed, case.script);
        println!(
            "dim {} seed {:#x} script {:?} digest 0x{:016x}",
            case.dim, case.seed, case.script, got
        );
    }
}

//! Property tests for geometry-driven refinement (DESIGN.md §18).
//!
//! [`GeometryCriterion`]'s straddle test is a center + half-diagonal
//! bound; these tests check it against *independent* ground truths built
//! from dense SDF corner sampling and the 1-Lipschitz property every
//! [`ablock_core::geom::Geometry`] combinator preserves:
//!
//! 1. every leaf the zero level set provably crosses, while still
//!    coarser than the target resolution, is flagged `Refine`;
//! 2. no leaf provably far from the boundary (entirely fluid with a
//!    block-diagonal margin) is ever flagged `Refine`;
//! 3. fluid-cell conserved totals (mass, energy) survive whole random
//!    adapt+step schedules driven by the criterion itself, with
//!    conservative transfers and refluxed wall-aware stepping.

use ablock_amr::{flag_blocks, Criterion, GeometryCriterion};
use ablock_core::arena::BlockId;
use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::verify::check_grid;
use ablock_solver::{
    problems, total_conserved, total_conserved_fluid, Euler, Scheme, SolverConfig, Stepper,
    TimeStepMode,
};
use ablock_testkit::{cases, random_geometry, Rng};

const MAX_LEVEL: u8 = 2;

fn masked_grid(rng: &mut Rng) -> BlockGrid<2> {
    let layout =
        RootLayout::unit([2, 2], Boundary::Periodic).with_geometry(random_geometry(rng, 2));
    BlockGrid::new(layout, GridParams::new([4, 4], 2, 4, MAX_LEVEL))
}

/// Mixed-level grids for the flagging properties, produced by a few
/// rounds of *criterion-independent* random flags so the shapes under
/// test are not themselves artifacts of the criterion.
fn random_adapts(g: &mut BlockGrid<2>, rng: &mut Rng) {
    for _ in 0..rng.usize_in(0, 3) {
        let mut flags = std::collections::HashMap::new();
        for id in g.block_ids() {
            let r = rng.u64_below(100);
            if r < 35 {
                flags.insert(id, Flag::Refine);
            } else if r < 55 {
                flags.insert(id, Flag::Coarsen);
            }
        }
        adapt(g, &flags, Transfer::None);
    }
}

/// Ground-truth straddle proof, independent of the criterion's formula:
/// the SDF changes sign somewhere on the block's cell-corner lattice, so
/// the zero level set certainly crosses the block.
fn provably_straddles(g: &BlockGrid<2>, id: BlockId) -> bool {
    let geom = g.layout().geometry.as_ref().expect("geometry installed");
    let node = g.block(id);
    let m = g.params().block_dims;
    let o = g.layout().block_origin(node.key(), m);
    let h = g.layout().cell_size(node.key().level, m);
    let (mut neg, mut pos) = (false, false);
    for i in 0..=m[0] {
        for j in 0..=m[1] {
            let sd = geom.sd([o[0] + h[0] * i as f64, o[1] + h[1] * j as f64]);
            if sd < 0.0 {
                neg = true;
            } else if sd > 0.0 {
                pos = true;
            }
        }
    }
    neg && pos
}

/// Ground-truth farness proof: every cell corner is fluid by more than
/// the *full* block diagonal. Signed distances are 1-Lipschitz, so the
/// center — within half a diagonal of a corner — is then itself fluid by
/// more than half a diagonal, and the zero level set cannot touch the
/// block.
fn provably_far_fluid(g: &BlockGrid<2>, id: BlockId) -> bool {
    let geom = g.layout().geometry.as_ref().expect("geometry installed");
    let node = g.block(id);
    let m = g.params().block_dims;
    let o = g.layout().block_origin(node.key(), m);
    let h = g.layout().cell_size(node.key().level, m);
    let ext = [h[0] * m[0] as f64, h[1] * m[1] as f64];
    let diag = (ext[0] * ext[0] + ext[1] * ext[1]).sqrt();
    let mut min_sd = f64::INFINITY;
    for i in 0..=m[0] {
        for j in 0..=m[1] {
            min_sd = min_sd.min(geom.sd([o[0] + h[0] * i as f64, o[1] + h[1] * j as f64]));
        }
    }
    min_sd > diag
}

/// Property 1: on random immersed geometries over random mixed-level
/// grids, every leaf the boundary provably crosses that is still coarser
/// than the target resolution carries a `Refine` flag — the conservative
/// straddle bound never misses.
#[test]
fn straddling_leaves_below_target_always_flag_refine() {
    cases(32, 0xAE0_0001, |_, rng| {
        let mut g = masked_grid(rng);
        random_adapts(&mut g, rng);
        check_grid(&g).unwrap();
        let c = GeometryCriterion::to_max_level(&g);
        let flags = flag_blocks(&g, &c);
        for (id, node) in g.blocks() {
            if node.key().level < MAX_LEVEL && provably_straddles(&g, id) {
                assert_eq!(
                    flags.get(&id),
                    Some(&Flag::Refine),
                    "straddling leaf {:?} below target not flagged (got {:?})",
                    node.key(),
                    flags.get(&id)
                );
            }
        }
    });
}

/// Property 2: no provably-far fluid-only leaf is ever flagged `Refine`;
/// above level 0 such leaves must actively want to coarsen back.
#[test]
fn far_fluid_leaves_never_flag_refine() {
    cases(32, 0xAE0_0002, |_, rng| {
        let mut g = masked_grid(rng);
        random_adapts(&mut g, rng);
        let c = GeometryCriterion::to_max_level(&g);
        let flags = flag_blocks(&g, &c);
        for (id, node) in g.blocks() {
            if !provably_far_fluid(&g, id) {
                continue;
            }
            assert_eq!(
                Criterion::<2>::indicator(&c, &g, id),
                0.0,
                "far fluid leaf {:?} has a nonzero indicator",
                node.key()
            );
            match flags.get(&id) {
                Some(&Flag::Refine) => {
                    panic!("far fluid leaf {:?} flagged Refine", node.key())
                }
                got => {
                    if node.key().level > 0 {
                        assert_eq!(
                            got,
                            Some(&Flag::Coarsen),
                            "refined far fluid leaf {:?} does not coarsen",
                            node.key()
                        );
                    }
                }
            }
        }
    });
}

/// Property 3: the criterion driving real adapt+step schedules never
/// breaks the conservation contract (DESIGN.md §18). The invariants
/// differ per event kind: an *adapt* preserves whole-grid totals (the
/// conservative transfer is mask-aware, but re-binarization moves cells
/// between the fluid and solid sides, so the fluid share legitimately
/// changes); a *step* preserves fluid totals of mass and energy exactly
/// (periodic boundaries + immersed walls pass zero mass/energy, and
/// solid cells are bitwise frozen) — global and subcycled alike.
#[test]
fn fluid_totals_survive_geometry_driven_schedules() {
    cases(8, 0xAE0_0003, |i, rng| {
        let mut g = masked_grid(rng);
        problems::advected_gaussian(&mut g, &Euler::new(1.4), [0.4, 0.3], [0.5, 0.5], 0.2);
        let mode = if i % 2 == 0 { TimeStepMode::Global } else { TimeStepMode::Subcycled };
        let mut st: Stepper<2, Euler<2>> = Stepper::new(
            SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
                .with_refluxing(true)
                .with_time_step_mode(mode),
        );
        let c = GeometryCriterion::to_max_level(&g);
        let rel = |a: f64, b: f64| (a - b).abs() / (1.0 + b.abs());
        for round in 0..3 {
            let whole: Vec<f64> = (0..4).map(|v| total_conserved(&g, v)).collect();
            let flags = flag_blocks(&g, &c);
            adapt(&mut g, &flags, Transfer::Conservative(ProlongOrder::LinearMinmod));
            for (v, &t) in whole.iter().enumerate() {
                let d = rel(total_conserved(&g, v), t);
                assert!(d < 1e-11, "{mode:?} adapt round {round}: whole-grid var {v} drifted {d:.3e}");
            }
            let (m0, e0) = (total_conserved_fluid(&g, 0), total_conserved_fluid(&g, 3));
            for _ in 0..rng.usize_in(1, 3) {
                st.step(&mut g, 1e-3, None);
                let dm = rel(total_conserved_fluid(&g, 0), m0);
                let de = rel(total_conserved_fluid(&g, 3), e0);
                assert!(dm < 1e-11, "{mode:?} step: fluid mass drifted by {dm:.3e}");
                assert!(de < 1e-11, "{mode:?} step: fluid energy drifted by {de:.3e}");
            }
        }
        check_grid(&g).unwrap();
    });
}

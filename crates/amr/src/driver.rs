//! The adaptive simulation driver: solve → check criterion → adapt → solve.
//!
//! [`AmrSimulation`] owns the grid, the stepper, and the criterion, and
//! implements the paper's operating cycle: many cheap steps on a fixed
//! block layout, then an (amortized) adapt with conservative solution
//! transfer and plan/scratch rebuild. It also tracks the statistics the
//! paper's efficiency arguments need — cell counts versus the equivalent
//! uniform grid, adapt reports, wall-clock split between stepping and
//! adapting.

use std::time::Instant;

use ablock_core::balance::{adapt, AdaptReport};
use ablock_core::grid::{BlockGrid, Transfer};
use ablock_core::ops::ProlongOrder;
use ablock_obs::phase;

use ablock_solver::config::SolverConfig;
use ablock_solver::physics::Physics;
use ablock_solver::recon::Recon;
use ablock_solver::stepper::{BcFn, Stepper};

use crate::criteria::{flag_blocks, Criterion};

/// Driver knobs for the adapt cadence. Numerics (CFL, refluxing, time
/// scheme) live on the [`SolverConfig`] instead, so one configuration
/// object serves every executor.
#[derive(Clone, Copy, Debug)]
pub struct AmrConfig {
    /// Steps between criterion checks (paper: adaptation "need not occur
    /// as frequently" for blocks).
    pub adapt_every: usize,
    /// Hard cap on steps in `run_until` (divergence guard).
    pub max_steps: usize,
}

impl Default for AmrConfig {
    fn default() -> Self {
        AmrConfig { adapt_every: 4, max_steps: 100_000 }
    }
}

/// Accumulated run statistics.
#[derive(Clone, Debug, Default)]
pub struct AmrStats {
    /// Steps taken.
    pub steps: usize,
    /// Adapt invocations that changed the grid.
    pub adapts: usize,
    /// Total blocks refined (requested + cascade).
    pub refined: usize,
    /// Total sibling groups coarsened.
    pub coarsened: usize,
    /// Peak leaf-block count.
    pub peak_blocks: usize,
    /// Seconds in the solver.
    pub solve_seconds: f64,
    /// Seconds in adaptation (flagging + restructuring + plan rebuild).
    pub adapt_seconds: f64,
}

/// An adaptive simulation of one physics system on one block grid.
pub struct AmrSimulation<const D: usize, P: Physics, C: Criterion<D>> {
    /// The adaptive block grid (public: examples inspect/render it).
    pub grid: BlockGrid<D>,
    /// The time integrator and its scratch.
    pub stepper: Stepper<D, P>,
    /// The refinement criterion.
    pub criterion: C,
    /// Driver knobs.
    pub config: AmrConfig,
    /// Current simulation time.
    pub time: f64,
    /// Run statistics.
    pub stats: AmrStats,
}

impl<const D: usize, P: Physics, C: Criterion<D>> AmrSimulation<D, P, C> {
    /// Assemble a simulation from a [`SolverConfig`] (initial data should
    /// already be on the grid, or use
    /// [`AmrSimulation::initial_adapt_with`] afterwards).
    pub fn new(
        grid: BlockGrid<D>,
        solver: SolverConfig<P>,
        criterion: C,
        config: AmrConfig,
    ) -> Self {
        let stepper = Stepper::new(solver);
        let peak = grid.num_blocks();
        AmrSimulation {
            grid,
            stepper,
            criterion,
            config,
            time: 0.0,
            stats: AmrStats { peak_blocks: peak, ..Default::default() },
        }
    }

    /// Conservative transfer matching the spatial scheme.
    fn transfer(&self) -> Transfer {
        Transfer::Conservative(match self.stepper.scheme().recon {
            Recon::FirstOrder => ProlongOrder::Constant,
            Recon::Muscl(_) => ProlongOrder::LinearMinmod,
        })
    }

    /// Adapt once from the current solution. Returns the report.
    pub fn adapt_now(&mut self, bc: Option<&BcFn<D>>) -> AdaptReport {
        let t0 = Instant::now();
        let metrics = self.stepper.metrics().clone();
        let _span = metrics.span(phase::ADAPT);
        self.stepper.fill_ghosts(&mut self.grid, bc);
        let flags = {
            let _flag = metrics.span("flag");
            flag_blocks(&self.grid, &self.criterion)
        };
        let transfer = self.transfer();
        let report = {
            let _cascade = metrics.span("cascade");
            adapt(&mut self.grid, &flags, transfer)
        };
        if report.changed() {
            // refine/coarsen bumped the grid epoch: the stepper's engine
            // rebuilds its plan on the next step automatically
            self.stats.adapts += 1;
            metrics.incr("amr.adapts", 1);
        }
        metrics.incr("amr.blocks_refined", report.refined_total() as u64);
        metrics.incr("amr.groups_coarsened", report.coarsened_groups as u64);
        self.stats.refined += report.refined_total();
        self.stats.coarsened += report.coarsened_groups;
        self.stats.peak_blocks = self.stats.peak_blocks.max(self.grid.num_blocks());
        self.stats.adapt_seconds += t0.elapsed().as_secs_f64();
        report
    }

    /// Adapt repeatedly while re-imposing initial data after each round —
    /// the standard way to resolve initial conditions to depth before
    /// starting the clock. `reset` reapplies the ICs onto the (new) grid.
    pub fn initial_adapt_with(
        &mut self,
        rounds: usize,
        bc: Option<&BcFn<D>>,
        mut reset: impl FnMut(&mut BlockGrid<D>),
    ) {
        reset(&mut self.grid);
        for _ in 0..rounds {
            let rep = self.adapt_now(bc);
            reset(&mut self.grid);
            if !rep.changed() {
                break;
            }
        }
    }

    /// Advance one CFL-limited step (adapting on cadence). Returns `dt`.
    /// Under [`TimeStepMode::Subcycled`](ablock_solver::TimeStepMode) one
    /// "step" is a full coarsest-level cycle (finer levels subcycle
    /// inside it), so the adapt cadence counts coarse cycles — the grid
    /// never restructures mid-hierarchy-advance.
    pub fn advance(&mut self, bc: Option<&BcFn<D>>) -> f64 {
        if self.stats.steps > 0 && self.stats.steps.is_multiple_of(self.config.adapt_every) {
            self.adapt_now(bc);
        }
        let t0 = Instant::now();
        let dt = self.stepper.stable_dt(&mut self.grid);
        assert!(dt.is_finite() && dt > 0.0, "non-positive dt at t = {}", self.time);
        self.stepper.step(&mut self.grid, dt, bc);
        self.time += dt;
        self.stats.steps += 1;
        self.stats.solve_seconds += t0.elapsed().as_secs_f64();
        dt
    }

    /// Run to `t_end`. Returns steps taken in this call.
    pub fn run_until(&mut self, t_end: f64, bc: Option<&BcFn<D>>) -> usize {
        let mut steps = 0;
        while self.time < t_end - 1e-14 {
            if self.stats.steps > 0 && self.stats.steps.is_multiple_of(self.config.adapt_every) {
                self.adapt_now(bc);
            }
            let t0 = Instant::now();
            let dt = self.stepper.stable_dt(&mut self.grid).min(t_end - self.time);
            assert!(dt.is_finite() && dt > 0.0, "non-positive dt at t = {}", self.time);
            self.stepper.step(&mut self.grid, dt, bc);
            self.time += dt;
            self.stats.steps += 1;
            steps += 1;
            self.stats.solve_seconds += t0.elapsed().as_secs_f64();
            assert!(
                self.stats.steps < self.config.max_steps,
                "exceeded max_steps before t_end"
            );
        }
        steps
    }

    /// Cells on the current grid.
    pub fn cells(&self) -> usize {
        self.grid.num_cells()
    }

    /// Cells a uniform grid at the finest *present* level would need —
    /// the denominator of the paper's "far more efficient than fixed
    /// uniform grid" savings claim.
    pub fn uniform_equivalent_cells(&self) -> usize {
        let l = self.grid.max_level_present() as u32;
        let per_block: usize = self
            .grid
            .params()
            .block_dims
            .iter()
            .map(|&m| m as usize)
            .product();
        let roots = self.grid.layout().num_roots() as usize;
        roots * (1usize << (l * D as u32)) * per_block
    }

    /// Fraction of the uniform-equivalent cells actually allocated.
    pub fn compression(&self) -> f64 {
        self.cells() as f64 / self.uniform_equivalent_cells() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{BallCriterion, GradientCriterion};
    use ablock_core::grid::GridParams;
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_solver::euler::Euler;
    use ablock_solver::kernel::Scheme;
    use ablock_solver::problems;
    use ablock_solver::stepper::total_conserved;

    #[test]
    fn initial_adapt_resolves_blast_region() {
        let e = Euler::<2>::new(1.4);
        let grid = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([8, 8], 2, 4, 3),
        );
        // monitor total energy: the Sedov IC has uniform density, so the
        // blast edge only shows in E
        let crit = GradientCriterion::new(3, 0.05, 0.02);
        let mut sim = AmrSimulation::new(
            grid,
            SolverConfig::new(e.clone(), Scheme::muscl_rusanov()),
            crit,
            AmrConfig::default(),
        );
        problems::sedov_blast(&mut sim.grid, &e, [0.5, 0.5], 0.12, 10.0);
        sim.initial_adapt_with(4, None, |g| {
            problems::sedov_blast(g, &e, [0.5, 0.5], 0.12, 10.0)
        });
        assert!(sim.grid.max_level_present() >= 2, "blast edge must refine");
        assert!(sim.compression() < 1.0, "AMR must beat uniform");
        ablock_core::verify::check_grid(&sim.grid).unwrap();
    }

    #[test]
    fn blast_runs_and_tracks_front() {
        let e = Euler::<2>::new(1.4);
        let grid = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([8, 8], 2, 4, 2),
        );
        let crit = GradientCriterion::new(0, 0.08, 0.03);
        let mut sim = AmrSimulation::new(
            grid,
            SolverConfig::new(e.clone(), Scheme::muscl_rusanov()).with_cfl(0.3),
            crit,
            AmrConfig { adapt_every: 3, max_steps: 10_000 },
        );
        problems::sedov_blast(&mut sim.grid, &e, [0.5, 0.5], 0.1, 20.0);
        sim.initial_adapt_with(3, None, |g| {
            problems::sedov_blast(g, &e, [0.5, 0.5], 0.1, 20.0)
        });
        let m0 = total_conserved(&sim.grid, 0);
        sim.run_until(0.05, None);
        let m1 = total_conserved(&sim.grid, 0);
        // closed box (outflow loses a little at late times; front hasn't
        // reached the boundary yet at t=0.05)
        assert!((m1 - m0).abs() < 1e-3 * m0, "mass {m0} -> {m1}");
        assert!(sim.stats.adapts >= 1, "the front must trigger adapts");
        assert!(sim.stats.steps > 0);
        ablock_core::verify::check_grid(&sim.grid).unwrap();
        // everything stayed physical
        for (_, n) in sim.grid.blocks() {
            for c in n.field().shape().interior_box().iter() {
                assert!(n.field().at(c, 0) > 0.0);
                assert!(n.field().cell(c).iter().all(|x| x.is_finite()));
            }
        }
    }

    #[test]
    fn moving_ball_refines_and_coarsens() {
        let e = Euler::<2>::new(1.4);
        let grid = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 4, 2),
        );
        let mut sim = AmrSimulation::new(
            grid,
            SolverConfig::new(e.clone(), Scheme::muscl_rusanov()),
            BallCriterion { center: [0.25, 0.25], radius: 0.05 },
            AmrConfig::default(),
        );
        problems::set_initial(&mut sim.grid, &e, |_, w| {
            w[0] = 1.0;
            w[3] = 1.0;
        });
        sim.adapt_now(None);
        sim.adapt_now(None);
        let blocks_at_corner = sim.grid.num_blocks();
        assert!(blocks_at_corner > 4);
        // move the ball: old site coarsens, new site refines
        sim.criterion.center = [0.75, 0.75];
        sim.adapt_now(None);
        sim.adapt_now(None);
        sim.adapt_now(None);
        ablock_core::verify::check_grid(&sim.grid).unwrap();
        let fine_new = sim.grid.find_leaf_at([0.75, 0.75]).unwrap();
        assert_eq!(sim.grid.block(fine_new).key().level, 2);
        let coarse_old = sim.grid.find_leaf_at([0.25, 0.25]).unwrap();
        assert!(sim.grid.block(coarse_old).key().level <= 1);
        assert!(sim.stats.coarsened > 0);
    }

    #[test]
    fn compression_reported() {
        let e = Euler::<2>::new(1.4);
        let grid = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 4, 3),
        );
        let mut sim = AmrSimulation::new(
            grid,
            SolverConfig::new(e, Scheme::first_order()),
            BallCriterion { center: [0.1, 0.1], radius: 0.02 },
            AmrConfig::default(),
        );
        for _ in 0..3 {
            sim.adapt_now(None);
        }
        // corner refined to level 3: uniform equivalent is 4096 cells
        assert_eq!(sim.uniform_equivalent_cells(), 4 * 64 * 16);
        assert!(sim.compression() < 0.25, "compression {}", sim.compression());
    }
}

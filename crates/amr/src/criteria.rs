//! Refinement criteria.
//!
//! The paper leaves the refinement/coarsening criterion open ("One can
//! vary the refinement/coarsening criteria, the extent…, the frequency of
//! checking…"). This module supplies the standard choices its
//! applications used — normalized gradient sensors on a monitored variable
//! — plus a geometric criterion for tests, all behind one trait so the
//! driver can take anything.

use std::collections::HashMap;

use ablock_core::arena::BlockId;
use ablock_core::balance::Flag;
use ablock_core::grid::BlockGrid;

/// Decides, per block, how strongly the solution wants resolution there.
pub trait Criterion<const D: usize>: Send + Sync {
    /// A non-negative indicator for one block (ghosts are filled before
    /// this is called). Bigger = wants refinement.
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64;

    /// Refine when the indicator exceeds this.
    fn refine_above(&self) -> f64;

    /// Coarsen when the indicator falls below this.
    fn coarsen_below(&self) -> f64;
}

/// Max undivided relative gradient of one variable over the block:
/// `max_c max_d |u[c+e_d] − u[c−e_d]| / (|u[c]| + eps)`.
#[derive(Clone, Debug)]
pub struct GradientCriterion {
    /// Conserved variable to monitor (density = 0 is the usual choice).
    pub var: usize,
    /// Refinement threshold on the relative jump.
    pub refine_above: f64,
    /// Coarsening threshold.
    pub coarsen_below: f64,
    /// Normalization floor.
    pub eps: f64,
}

impl GradientCriterion {
    /// Monitor variable `var` with the given thresholds.
    pub fn new(var: usize, refine_above: f64, coarsen_below: f64) -> Self {
        assert!(coarsen_below <= refine_above);
        GradientCriterion { var, refine_above, coarsen_below, eps: 1e-12 }
    }
}

impl<const D: usize> Criterion<D> for GradientCriterion {
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64 {
        let node = grid.block(id);
        let f = node.field();
        let mut worst: f64 = 0.0;
        for c in f.shape().interior_box().iter() {
            let u0 = f.at(c, self.var).abs() + self.eps;
            for d in 0..D {
                let mut cp = c;
                cp[d] += 1;
                let mut cm = c;
                cm[d] -= 1;
                let jump = (f.at(cp, self.var) - f.at(cm, self.var)).abs();
                worst = worst.max(jump / u0);
            }
        }
        worst
    }

    fn refine_above(&self) -> f64 {
        self.refine_above
    }

    fn coarsen_below(&self) -> f64 {
        self.coarsen_below
    }
}

/// Geometric criterion: refine blocks intersecting a moving ball (tests
/// and structured demos — tracks a feature of known position).
#[derive(Clone, Debug)]
pub struct BallCriterion<const D: usize> {
    /// Ball center.
    pub center: [f64; D],
    /// Ball radius.
    pub radius: f64,
}

impl<const D: usize> Criterion<D> for BallCriterion<D> {
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64 {
        let node = grid.block(id);
        let m = grid.params().block_dims;
        let o = grid.layout().block_origin(node.key(), m);
        let h = grid.layout().cell_size(node.key().level, m);
        let mut d2 = 0.0;
        for d in 0..D {
            let lo = o[d];
            let hi = o[d] + h[d] * m[d] as f64;
            let c = self.center[d].clamp(lo, hi);
            d2 += (self.center[d] - c) * (self.center[d] - c);
        }
        if d2 <= self.radius * self.radius {
            1.0
        } else {
            0.0
        }
    }

    fn refine_above(&self) -> f64 {
        0.5
    }

    fn coarsen_below(&self) -> f64 {
        0.5
    }
}

/// Refine toward the zero level set of the grid's installed immersed
/// geometry ([`BlockGrid::set_geometry`], DESIGN.md §18): blocks whose
/// bounding sphere straddles the solid boundary refine until their cell
/// size reaches `target_h`, blocks far from the boundary (entirely fluid
/// or entirely solid) coarsen back.
///
/// The straddle test is conservative: signed distances are 1-Lipschitz
/// (all [`ablock_core::geom::Geometry`] combinators preserve this), so
/// `|sd(block center)| ≤ half-diagonal` is implied whenever the boundary
/// actually crosses the block — no straddling block is ever missed. The
/// indicator is three-valued: `1.0` (straddling, still coarser than
/// `target_h` — refine), `0.5` (straddling at target — hold, avoiding
/// refine/coarsen oscillation), `0.0` (far — coarsen). On grids without a
/// geometry every block reads `0.0`.
#[derive(Clone, Debug)]
pub struct GeometryCriterion {
    /// Stop refining boundary-straddling blocks once every cell dimension
    /// is at or below this size. Set it to the finest level's cell size to
    /// drive the boundary to `max_level`.
    pub target_h: f64,
}

impl GeometryCriterion {
    /// Refine boundary-straddling blocks until cells reach `target_h`.
    pub fn new(target_h: f64) -> Self {
        assert!(target_h > 0.0 && target_h.is_finite());
        GeometryCriterion { target_h }
    }

    /// The target cell size that drives the boundary to `max_level` of
    /// `grid`: the finest level's largest cell dimension.
    pub fn to_max_level<const D: usize>(grid: &BlockGrid<D>) -> Self {
        let h = grid
            .layout()
            .cell_size(grid.params().max_level, grid.params().block_dims);
        let target = h.iter().fold(0.0f64, |a, &b| a.max(b));
        GeometryCriterion::new(target)
    }
}

impl<const D: usize> Criterion<D> for GeometryCriterion {
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64 {
        let Some(geom) = grid.layout().geometry.as_ref() else {
            return 0.0;
        };
        let node = grid.block(id);
        let m = grid.params().block_dims;
        let o = grid.layout().block_origin(node.key(), m);
        let h = grid.layout().cell_size(node.key().level, m);
        let mut center = [0.0; D];
        let mut diag2 = 0.0;
        for d in 0..D {
            let ext = h[d] * m[d] as f64;
            center[d] = o[d] + 0.5 * ext;
            diag2 += 0.25 * ext * ext;
        }
        let sd = geom.sd(center);
        if sd * sd > diag2 {
            return 0.0; // provably entirely fluid or entirely solid
        }
        let hmax = h.iter().fold(0.0f64, |a, &b| a.max(b));
        if hmax > self.target_h {
            1.0
        } else {
            0.5
        }
    }

    fn refine_above(&self) -> f64 {
        0.75
    }

    fn coarsen_below(&self) -> f64 {
        0.25
    }
}

/// Combine two criteria by taking the *stronger* signal: the indicator is
/// the max of the normalized indicators, refine if either would refine,
/// coarsen only if both would coarsen. Lets a run track, e.g., both a
/// density gradient and a geometric region at once.
pub struct MaxCriterion<A, B> {
    /// First criterion.
    pub a: A,
    /// Second criterion.
    pub b: B,
}

impl<const D: usize, A: Criterion<D>, B: Criterion<D>> Criterion<D> for MaxCriterion<A, B> {
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64 {
        // normalize each indicator by its own refine threshold so the two
        // scales are comparable; the combined thresholds are then 1.0-based
        let ia = self.a.indicator(grid, id) / self.a.refine_above().max(1e-300);
        let ib = self.b.indicator(grid, id) / self.b.refine_above().max(1e-300);
        ia.max(ib)
    }

    fn refine_above(&self) -> f64 {
        1.0
    }

    fn coarsen_below(&self) -> f64 {
        // both must be below their own coarsen fraction; use the stricter
        // (smaller) normalized fraction
        let fa = self.a.coarsen_below() / self.a.refine_above().max(1e-300);
        let fb = self.b.coarsen_below() / self.b.refine_above().max(1e-300);
        fa.min(fb)
    }
}

/// Turn a criterion into an adapt flag map: refine above / coarsen below,
/// respecting `max_level` (capped blocks are not flagged for refinement).
pub fn flag_blocks<const D: usize>(
    grid: &BlockGrid<D>,
    criterion: &dyn Criterion<D>,
) -> HashMap<BlockId, Flag> {
    let mut flags = HashMap::new();
    let max_level = grid.params().max_level;
    for (id, node) in grid.blocks() {
        let ind = criterion.indicator(grid, id);
        if ind > criterion.refine_above() && node.key().level < max_level {
            flags.insert(id, Flag::Refine);
        } else if ind < criterion.coarsen_below() && node.key().level > 0 {
            flags.insert(id, Flag::Coarsen);
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::ghost::{fill_ghosts, GhostConfig};
    use ablock_core::grid::GridParams;
    use ablock_core::layout::{Boundary, RootLayout};

    fn grid() -> BlockGrid<2> {
        BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 3),
        )
    }

    #[test]
    fn gradient_zero_on_uniform_field() {
        let mut g = grid();
        for id in g.block_ids() {
            g.block_mut(id).field_mut().for_each_ghosted(|_, u| u[0] = 3.0);
        }
        let c = GradientCriterion::new(0, 0.1, 0.01);
        for id in g.block_ids() {
            assert_eq!(Criterion::<2>::indicator(&c, &g, id), 0.0);
        }
        let flags = flag_blocks(&g, &c);
        // uniform level-0 grid: nothing refines, level-0 cannot coarsen
        assert!(flags.is_empty());
    }

    #[test]
    fn gradient_detects_jump() {
        let mut g = grid();
        let layout = g.layout().clone();
        let m = g.params().block_dims;
        for id in g.block_ids() {
            let key = g.block(id).key();
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, m, c);
                u[0] = if x[0] < 0.5 { 1.0 } else { 2.0 };
            });
        }
        fill_ghosts(&mut g, GhostConfig::default());
        let c = GradientCriterion::new(0, 0.1, 0.01);
        let flags = flag_blocks(&g, &c);
        // the two left blocks touch the jump via ghosts? the jump sits at
        // the block boundary: both columns see it through ghost stencils
        assert!(!flags.is_empty());
        assert!(flags.values().all(|f| *f == Flag::Refine));
    }

    #[test]
    fn ball_criterion_flags_intersecting_blocks() {
        let g = grid();
        let c = BallCriterion { center: [0.25, 0.25], radius: 0.1 };
        let flags = flag_blocks(&g, &c);
        assert_eq!(flags.len(), 1);
        let (&id, &f) = flags.iter().next().unwrap();
        assert_eq!(f, Flag::Refine);
        assert_eq!(g.block(id).key().coords, [0, 0]);
    }

    #[test]
    fn max_criterion_combines_signals() {
        let mut g = grid();
        // gradient sees nothing (uniform field), ball criterion fires
        for id in g.block_ids() {
            g.block_mut(id).field_mut().for_each_ghosted(|_, u| u[0] = 2.0);
        }
        let combined = MaxCriterion {
            a: GradientCriterion::new(0, 0.1, 0.01),
            b: BallCriterion { center: [0.75, 0.75], radius: 0.05 },
        };
        let flags = flag_blocks(&g, &combined);
        assert_eq!(flags.len(), 1, "only the ball block refines");
        let (&id, &f) = flags.iter().next().unwrap();
        assert_eq!(f, Flag::Refine);
        assert_eq!(g.block(id).key().coords, [1, 1]);
        // and vice versa: a jump away from the ball also refines
        let target = g.find(ablock_core::key::BlockKey::new(0, [0, 0])).unwrap();
        g.block_mut(target).field_mut().for_each_interior(|c, u| {
            u[0] = if c[0] < 2 { 1.0 } else { 5.0 };
        });
        let flags = flag_blocks(&g, &combined);
        assert!(flags.len() >= 2, "both signals must fire: {flags:?}");
    }

    #[test]
    fn geometry_criterion_refines_straddling_blocks_to_target() {
        use ablock_core::geom::Geometry;
        let mut g = grid();
        // no geometry installed: every indicator is 0.0, nothing flags
        let c = GeometryCriterion::to_max_level(&g);
        for id in g.block_ids() {
            assert_eq!(Criterion::<2>::indicator(&c, &g, id), 0.0);
        }
        assert!(flag_blocks(&g, &c).is_empty());
        // sphere boundary inside the lower-left root block only
        g.set_geometry(Some(Geometry::sphere([0.25, 0.25, 0.0], 0.1)));
        let flags = flag_blocks(&g, &c);
        assert!(!flags.is_empty());
        for (&id, &f) in &flags {
            assert_eq!(f, Flag::Refine);
            // only blocks near the boundary refine (conservative test may
            // include diagonal neighbors whose bounding sphere reaches in)
            let co = g.block(id).key().coords;
            assert!(co[0] <= 1 && co[1] <= 1, "far block {co:?} flagged");
        }
        // drive the adapt loop to a fixed point: boundary blocks reach
        // max_level and then hold (0.5 — neither refine nor coarsen)
        for _ in 0..g.params().max_level {
            let flags = flag_blocks(&g, &c);
            ablock_core::balance::adapt(
                &mut g,
                &flags,
                ablock_core::grid::Transfer::None,
            );
        }
        ablock_core::verify::check_grid(&g).unwrap();
        let flags = flag_blocks(&g, &c);
        assert!(
            flags.values().all(|f| *f != Flag::Refine),
            "refinement did not converge: {flags:?}"
        );
        // every straddling leaf sits at max_level now
        let max_level = g.params().max_level;
        for (id, node) in g.blocks() {
            if Criterion::<2>::indicator(&c, &g, id) >= 0.5 {
                assert_eq!(
                    node.key().level,
                    max_level,
                    "straddling block {:?} not at target",
                    node.key()
                );
            }
        }
    }

    #[test]
    fn geometry_criterion_coarsens_far_blocks() {
        use ablock_core::geom::Geometry;
        let mut g = grid();
        g.set_geometry(Some(Geometry::sphere([0.25, 0.25, 0.0], 0.1)));
        let c = GeometryCriterion::to_max_level(&g);
        for _ in 0..g.params().max_level {
            let flags = flag_blocks(&g, &c);
            ablock_core::balance::adapt(
                &mut g,
                &flags,
                ablock_core::grid::Transfer::None,
            );
        }
        // move the solid: blocks refined around the old boundary are now
        // far from the new one and flag Coarsen
        g.set_geometry(Some(Geometry::sphere([0.75, 0.75, 0.0], 0.1)));
        let flags = flag_blocks(&g, &c);
        assert!(
            flags.values().any(|f| *f == Flag::Coarsen),
            "no stale fine block wants coarsening: {flags:?}"
        );
    }

    #[test]
    fn refined_blocks_away_from_ball_want_coarsening() {
        let mut g = grid();
        let c = BallCriterion { center: [0.25, 0.25], radius: 0.1 };
        let flags = flag_blocks(&g, &c);
        ablock_core::balance::adapt(&mut g, &flags, ablock_core::grid::Transfer::None);
        // move the ball away; refined blocks should flag coarsen
        let c2 = BallCriterion { center: [0.75, 0.75], radius: 0.1 };
        let flags2 = flag_blocks(&g, &c2);
        let coarsens = flags2.values().filter(|f| **f == Flag::Coarsen).count();
        assert_eq!(coarsens, 4, "all four children of the old site");
    }
}

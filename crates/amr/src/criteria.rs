//! Refinement criteria.
//!
//! The paper leaves the refinement/coarsening criterion open ("One can
//! vary the refinement/coarsening criteria, the extent…, the frequency of
//! checking…"). This module supplies the standard choices its
//! applications used — normalized gradient sensors on a monitored variable
//! — plus a geometric criterion for tests, all behind one trait so the
//! driver can take anything.

use std::collections::HashMap;

use ablock_core::arena::BlockId;
use ablock_core::balance::Flag;
use ablock_core::grid::BlockGrid;

/// Decides, per block, how strongly the solution wants resolution there.
pub trait Criterion<const D: usize>: Send + Sync {
    /// A non-negative indicator for one block (ghosts are filled before
    /// this is called). Bigger = wants refinement.
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64;

    /// Refine when the indicator exceeds this.
    fn refine_above(&self) -> f64;

    /// Coarsen when the indicator falls below this.
    fn coarsen_below(&self) -> f64;
}

/// Max undivided relative gradient of one variable over the block:
/// `max_c max_d |u[c+e_d] − u[c−e_d]| / (|u[c]| + eps)`.
#[derive(Clone, Debug)]
pub struct GradientCriterion {
    /// Conserved variable to monitor (density = 0 is the usual choice).
    pub var: usize,
    /// Refinement threshold on the relative jump.
    pub refine_above: f64,
    /// Coarsening threshold.
    pub coarsen_below: f64,
    /// Normalization floor.
    pub eps: f64,
}

impl GradientCriterion {
    /// Monitor variable `var` with the given thresholds.
    pub fn new(var: usize, refine_above: f64, coarsen_below: f64) -> Self {
        assert!(coarsen_below <= refine_above);
        GradientCriterion { var, refine_above, coarsen_below, eps: 1e-12 }
    }
}

impl<const D: usize> Criterion<D> for GradientCriterion {
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64 {
        let node = grid.block(id);
        let f = node.field();
        let mut worst: f64 = 0.0;
        for c in f.shape().interior_box().iter() {
            let u0 = f.at(c, self.var).abs() + self.eps;
            for d in 0..D {
                let mut cp = c;
                cp[d] += 1;
                let mut cm = c;
                cm[d] -= 1;
                let jump = (f.at(cp, self.var) - f.at(cm, self.var)).abs();
                worst = worst.max(jump / u0);
            }
        }
        worst
    }

    fn refine_above(&self) -> f64 {
        self.refine_above
    }

    fn coarsen_below(&self) -> f64 {
        self.coarsen_below
    }
}

/// Geometric criterion: refine blocks intersecting a moving ball (tests
/// and structured demos — tracks a feature of known position).
#[derive(Clone, Debug)]
pub struct BallCriterion<const D: usize> {
    /// Ball center.
    pub center: [f64; D],
    /// Ball radius.
    pub radius: f64,
}

impl<const D: usize> Criterion<D> for BallCriterion<D> {
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64 {
        let node = grid.block(id);
        let m = grid.params().block_dims;
        let o = grid.layout().block_origin(node.key(), m);
        let h = grid.layout().cell_size(node.key().level, m);
        let mut d2 = 0.0;
        for d in 0..D {
            let lo = o[d];
            let hi = o[d] + h[d] * m[d] as f64;
            let c = self.center[d].clamp(lo, hi);
            d2 += (self.center[d] - c) * (self.center[d] - c);
        }
        if d2 <= self.radius * self.radius {
            1.0
        } else {
            0.0
        }
    }

    fn refine_above(&self) -> f64 {
        0.5
    }

    fn coarsen_below(&self) -> f64 {
        0.5
    }
}

/// Combine two criteria by taking the *stronger* signal: the indicator is
/// the max of the normalized indicators, refine if either would refine,
/// coarsen only if both would coarsen. Lets a run track, e.g., both a
/// density gradient and a geometric region at once.
pub struct MaxCriterion<A, B> {
    /// First criterion.
    pub a: A,
    /// Second criterion.
    pub b: B,
}

impl<const D: usize, A: Criterion<D>, B: Criterion<D>> Criterion<D> for MaxCriterion<A, B> {
    fn indicator(&self, grid: &BlockGrid<D>, id: BlockId) -> f64 {
        // normalize each indicator by its own refine threshold so the two
        // scales are comparable; the combined thresholds are then 1.0-based
        let ia = self.a.indicator(grid, id) / self.a.refine_above().max(1e-300);
        let ib = self.b.indicator(grid, id) / self.b.refine_above().max(1e-300);
        ia.max(ib)
    }

    fn refine_above(&self) -> f64 {
        1.0
    }

    fn coarsen_below(&self) -> f64 {
        // both must be below their own coarsen fraction; use the stricter
        // (smaller) normalized fraction
        let fa = self.a.coarsen_below() / self.a.refine_above().max(1e-300);
        let fb = self.b.coarsen_below() / self.b.refine_above().max(1e-300);
        fa.min(fb)
    }
}

/// Turn a criterion into an adapt flag map: refine above / coarsen below,
/// respecting `max_level` (capped blocks are not flagged for refinement).
pub fn flag_blocks<const D: usize>(
    grid: &BlockGrid<D>,
    criterion: &dyn Criterion<D>,
) -> HashMap<BlockId, Flag> {
    let mut flags = HashMap::new();
    let max_level = grid.params().max_level;
    for (id, node) in grid.blocks() {
        let ind = criterion.indicator(grid, id);
        if ind > criterion.refine_above() && node.key().level < max_level {
            flags.insert(id, Flag::Refine);
        } else if ind < criterion.coarsen_below() && node.key().level > 0 {
            flags.insert(id, Flag::Coarsen);
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::ghost::{fill_ghosts, GhostConfig};
    use ablock_core::grid::GridParams;
    use ablock_core::layout::{Boundary, RootLayout};

    fn grid() -> BlockGrid<2> {
        BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 3),
        )
    }

    #[test]
    fn gradient_zero_on_uniform_field() {
        let mut g = grid();
        for id in g.block_ids() {
            g.block_mut(id).field_mut().for_each_ghosted(|_, u| u[0] = 3.0);
        }
        let c = GradientCriterion::new(0, 0.1, 0.01);
        for id in g.block_ids() {
            assert_eq!(Criterion::<2>::indicator(&c, &g, id), 0.0);
        }
        let flags = flag_blocks(&g, &c);
        // uniform level-0 grid: nothing refines, level-0 cannot coarsen
        assert!(flags.is_empty());
    }

    #[test]
    fn gradient_detects_jump() {
        let mut g = grid();
        let layout = g.layout().clone();
        let m = g.params().block_dims;
        for id in g.block_ids() {
            let key = g.block(id).key();
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, m, c);
                u[0] = if x[0] < 0.5 { 1.0 } else { 2.0 };
            });
        }
        fill_ghosts(&mut g, GhostConfig::default());
        let c = GradientCriterion::new(0, 0.1, 0.01);
        let flags = flag_blocks(&g, &c);
        // the two left blocks touch the jump via ghosts? the jump sits at
        // the block boundary: both columns see it through ghost stencils
        assert!(!flags.is_empty());
        assert!(flags.values().all(|f| *f == Flag::Refine));
    }

    #[test]
    fn ball_criterion_flags_intersecting_blocks() {
        let g = grid();
        let c = BallCriterion { center: [0.25, 0.25], radius: 0.1 };
        let flags = flag_blocks(&g, &c);
        assert_eq!(flags.len(), 1);
        let (&id, &f) = flags.iter().next().unwrap();
        assert_eq!(f, Flag::Refine);
        assert_eq!(g.block(id).key().coords, [0, 0]);
    }

    #[test]
    fn max_criterion_combines_signals() {
        let mut g = grid();
        // gradient sees nothing (uniform field), ball criterion fires
        for id in g.block_ids() {
            g.block_mut(id).field_mut().for_each_ghosted(|_, u| u[0] = 2.0);
        }
        let combined = MaxCriterion {
            a: GradientCriterion::new(0, 0.1, 0.01),
            b: BallCriterion { center: [0.75, 0.75], radius: 0.05 },
        };
        let flags = flag_blocks(&g, &combined);
        assert_eq!(flags.len(), 1, "only the ball block refines");
        let (&id, &f) = flags.iter().next().unwrap();
        assert_eq!(f, Flag::Refine);
        assert_eq!(g.block(id).key().coords, [1, 1]);
        // and vice versa: a jump away from the ball also refines
        let target = g.find(ablock_core::key::BlockKey::new(0, [0, 0])).unwrap();
        g.block_mut(target).field_mut().for_each_interior(|c, u| {
            u[0] = if c[0] < 2 { 1.0 } else { 5.0 };
        });
        let flags = flag_blocks(&g, &combined);
        assert!(flags.len() >= 2, "both signals must fire: {flags:?}");
    }

    #[test]
    fn refined_blocks_away_from_ball_want_coarsening() {
        let mut g = grid();
        let c = BallCriterion { center: [0.25, 0.25], radius: 0.1 };
        let flags = flag_blocks(&g, &c);
        ablock_core::balance::adapt(&mut g, &flags, ablock_core::grid::Transfer::None);
        // move the ball away; refined blocks should flag coarsen
        let c2 = BallCriterion { center: [0.75, 0.75], radius: 0.1 };
        let flags2 = flag_blocks(&g, &c2);
        let coarsens = flags2.values().filter(|f| **f == Flag::Coarsen).count();
        assert_eq!(coarsens, 4, "all four children of the old site");
    }
}

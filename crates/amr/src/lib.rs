//! # ablock-amr — adaptive mesh refinement driver
//!
//! Glues `ablock-core` (the data structure) to `ablock-solver` (the
//! numerics) into the paper's full application loop: step the solution,
//! evaluate a refinement criterion, adapt the block layout with
//! conservative solution transfer, rebuild cached plans, repeat.
//!
//! * [`criteria`] — gradient and geometric refinement sensors.
//! * [`driver`] — [`driver::AmrSimulation`]: the solve/adapt cycle with
//!   cell-count and timing statistics.

#![warn(missing_docs)]

pub mod criteria;
pub mod driver;

pub use criteria::{
    flag_blocks, BallCriterion, Criterion, GeometryCriterion, GradientCriterion, MaxCriterion,
};
pub use driver::{AmrConfig, AmrSimulation, AmrStats};
